//! The CPU-side result cache (§5.6's second data pool).
//!
//! "The CPU side maintains a cache of intermediate results and other
//! 'cooked' data." Entries are keyed by a query fingerprint and tagged with
//! the versions of the tables they were computed from; bumping a table's
//! version (any committed write) invalidates dependent results lazily, at
//! lookup time. Eviction is LRU by byte budget.

use std::collections::HashMap;

/// A cached result entry.
#[derive(Debug, Clone)]
struct Entry {
    bytes: Vec<u8>,
    /// `(table, version_at_compute_time)` dependencies.
    deps: Vec<(u32, u64)>,
    last_use: u64,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a valid result.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Lookups that found a stale result (dependency version changed).
    pub stale: u64,
    /// Entries evicted by the byte budget.
    pub evictions: u64,
}

/// An LRU, version-invalidated result cache.
#[derive(Debug, Clone)]
pub struct ResultCache {
    map: HashMap<u64, Entry>,
    table_versions: HashMap<u32, u64>,
    capacity_bytes: usize,
    used_bytes: usize,
    tick: u64,
    stats: CacheStats,
}

impl ResultCache {
    /// A cache bounded to `capacity_bytes` of result payload.
    pub fn new(capacity_bytes: usize) -> Self {
        ResultCache {
            map: HashMap::new(),
            table_versions: HashMap::new(),
            capacity_bytes,
            used_bytes: 0,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Current version of `table` (0 if never written).
    pub fn table_version(&self, table: u32) -> u64 {
        self.table_versions.get(&table).copied().unwrap_or(0)
    }

    /// Record a committed write to `table`, invalidating dependent results.
    pub fn bump_table(&mut self, table: u32) {
        *self.table_versions.entry(table).or_insert(0) += 1;
    }

    /// Look up a result by fingerprint. Stale entries are dropped.
    pub fn get(&mut self, fingerprint: u64) -> Option<&[u8]> {
        self.tick += 1;
        let tick = self.tick;
        // Validate dependencies first (separate scope for the borrow).
        let valid = match self.map.get(&fingerprint) {
            None => {
                self.stats.misses += 1;
                return None;
            }
            Some(e) => e
                .deps
                .iter()
                .all(|&(t, v)| self.table_versions.get(&t).copied().unwrap_or(0) == v),
        };
        if !valid {
            let dead = self.map.remove(&fingerprint).expect("checked above");
            self.used_bytes -= dead.bytes.len();
            self.stats.stale += 1;
            return None;
        }
        self.stats.hits += 1;
        let e = self.map.get_mut(&fingerprint).expect("checked above");
        e.last_use = tick;
        Some(&e.bytes)
    }

    /// Insert a result computed against the current versions of `tables`.
    /// Oversized results (bigger than the whole cache) are not cached.
    pub fn put(&mut self, fingerprint: u64, bytes: Vec<u8>, tables: &[u32]) {
        if bytes.len() > self.capacity_bytes {
            return;
        }
        self.tick += 1;
        if let Some(old) = self.map.remove(&fingerprint) {
            self.used_bytes -= old.bytes.len();
        }
        self.used_bytes += bytes.len();
        let deps = tables.iter().map(|&t| (t, self.table_version(t))).collect();
        self.map.insert(
            fingerprint,
            Entry {
                bytes,
                deps,
                last_use: self.tick,
            },
        );
        // Evict LRU entries until within budget.
        while self.used_bytes > self.capacity_bytes {
            let victim = self
                .map
                .iter()
                .filter(|(&k, _)| k != fingerprint)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(&k, _)| k);
            match victim {
                Some(k) => {
                    let dead = self.map.remove(&k).expect("victim exists");
                    self.used_bytes -= dead.bytes.len();
                    self.stats.evictions += 1;
                }
                None => break,
            }
        }
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_put() {
        let mut c = ResultCache::new(1024);
        c.put(1, b"result".to_vec(), &[0]);
        assert_eq!(c.get(1), Some(&b"result"[..]));
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn miss_on_absent() {
        let mut c = ResultCache::new(1024);
        assert_eq!(c.get(99), None);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn table_write_invalidates_dependents() {
        let mut c = ResultCache::new(1024);
        c.put(1, b"depends on t0".to_vec(), &[0]);
        c.put(2, b"depends on t1".to_vec(), &[1]);
        c.bump_table(0);
        assert_eq!(c.get(1), None, "stale");
        assert_eq!(c.stats().stale, 1);
        assert_eq!(c.get(2), Some(&b"depends on t1"[..]), "unaffected");
        assert_eq!(c.len(), 1, "stale entry dropped");
    }

    #[test]
    fn multi_table_dependency_any_bump_invalidates() {
        let mut c = ResultCache::new(1024);
        c.put(1, b"join".to_vec(), &[0, 1, 2]);
        c.bump_table(2);
        assert_eq!(c.get(1), None);
    }

    #[test]
    fn recomputed_result_is_valid_at_new_version() {
        let mut c = ResultCache::new(1024);
        c.put(1, b"v1".to_vec(), &[0]);
        c.bump_table(0);
        c.put(1, b"v2".to_vec(), &[0]);
        assert_eq!(c.get(1), Some(&b"v2"[..]));
    }

    #[test]
    fn lru_eviction_respects_budget() {
        let mut c = ResultCache::new(100);
        c.put(1, vec![1; 40], &[]);
        c.put(2, vec![2; 40], &[]);
        c.get(1); // make 1 recently used
        c.put(3, vec![3; 40], &[]); // evicts 2 (LRU)
        assert!(c.used_bytes() <= 100);
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(1).map(<[u8]>::len), Some(40));
        assert_eq!(c.get(3).map(<[u8]>::len), Some(40));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn oversized_results_are_not_cached() {
        let mut c = ResultCache::new(10);
        c.put(1, vec![0; 100], &[]);
        assert!(c.is_empty());
        assert_eq!(c.get(1), None);
    }

    #[test]
    fn replacing_an_entry_reclaims_its_bytes() {
        let mut c = ResultCache::new(100);
        c.put(1, vec![0; 80], &[]);
        c.put(1, vec![0; 20], &[]);
        assert_eq!(c.used_bytes(), 20);
        assert_eq!(c.len(), 1);
    }
}
