//! # bionic-overlay — the two data pools of §5.6
//!
//! The bionic system replaces the buffer pool with two pools:
//!
//! * [`overlay::OverlayIndex`] — the FPGA-side in-memory overlay: a
//!   bulk-loaded **main** index plus a versioned **delta** of buffered
//!   writes (HANA-style), with historical patching (`get_asof`,
//!   `range_asof`), bulk [`overlay::OverlayIndex::merge`] back to base
//!   data, and a memory budget that makes hardware probes of non-resident
//!   keys abort to software;
//! * [`result_cache::ResultCache`] — the CPU-side cache of "intermediate
//!   results and other 'cooked' data", LRU by bytes and invalidated by
//!   table versions.

#![deny(missing_docs)]

pub mod overlay;
pub mod result_cache;

pub use overlay::{MergeReport, OverlayFootprint, OverlayIndex};
pub use result_cache::{CacheStats, ResultCache};
