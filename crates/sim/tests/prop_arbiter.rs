//! Arbiter conservation properties (the E13 acceptance invariant).
//!
//! Whatever traffic mix the hybrid engine throws at a shared path, the
//! arbiter must neither create nor lose bandwidth: every window's grants
//! stay within capacity and sum per-client to exactly the grand total,
//! and no request finishes faster than its uncontended wire time.

use bionic_sim::arbiter::SharedBandwidth;
use bionic_sim::time::SimTime;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Req {
    client: usize,
    gap_ns: u64,
    bytes: u64,
}

fn req(clients: usize) -> impl Strategy<Value = Req> {
    (0..clients, 0u64..50_000, 0u64..2_000_000).prop_map(|(client, gap_ns, bytes)| Req {
        client,
        gap_ns,
        bytes,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bandwidth_is_conserved_across_any_traffic_mix(
        reqs in prop::collection::vec(req(3), 1..120),
        w1 in 1u64..5,
        w2 in 1u64..5,
        w3 in 1u64..5,
    ) {
        let mut arb = SharedBandwidth::new(80e9, SimTime::from_us(5.0), &[w1, w2, w3]);
        let mut at = SimTime::ZERO;
        let mut offered = [0u64; 3];
        for r in &reqs {
            at += SimTime::from_ns(r.gap_ns as f64);
            let grant = arb.request(r.client, at, r.bytes);
            offered[r.client] += r.bytes;
            // No request beats the speed of the wire.
            prop_assert!(grant.done >= at + arb.wire_time(r.bytes));
            prop_assert!(grant.queued >= SimTime::ZERO);
        }
        // Every offered byte was granted somewhere, to the right client.
        for (c, bytes) in offered.iter().enumerate() {
            prop_assert_eq!(arb.client_bytes(c), *bytes);
        }
        prop_assert_eq!(arb.total_bytes(), offered.iter().sum::<u64>());
        // No window overbooked, ledgers agree with the window sums.
        prop_assert!(arb.max_fill_frac() <= 1.0 + 1e-12);
        if let Err(e) = arb.check_conservation() {
            return Err(TestCaseError::fail(e));
        }
    }

    #[test]
    fn out_of_order_submission_gives_order_independent_ledgers(
        reqs in prop::collection::vec(req(2), 1..60),
    ) {
        // Submit the same timestamped requests in two different orders:
        // per-window grants may differ (arbitration is first-come within a
        // window), but conservation must hold in both and total bytes per
        // client must match.
        let build = |order: &[Req]| {
            let arb = SharedBandwidth::two_client(80e9, SimTime::from_us(5.0));
            let mut at = SimTime::ZERO;
            let mut stamped: Vec<(usize, SimTime, u64)> = Vec::new();
            for r in order {
                at += SimTime::from_ns(r.gap_ns as f64);
                stamped.push((r.client, at, r.bytes));
            }
            (arb.clone(), stamped)
        };
        let (proto, stamped) = build(&reqs);
        let mut fwd = proto.clone();
        for (c, at, b) in &stamped {
            fwd.request(*c, *at, *b);
        }
        let mut rev = proto;
        for (c, at, b) in stamped.iter().rev() {
            rev.request(*c, *at, *b);
        }
        for arb in [&fwd, &rev] {
            if let Err(e) = arb.check_conservation() {
                return Err(TestCaseError::fail(e));
            }
        }
        prop_assert_eq!(fwd.client_bytes(0), rev.client_bytes(0));
        prop_assert_eq!(fwd.client_bytes(1), rev.client_bytes(1));
        prop_assert_eq!(fwd.total_bytes(), rev.total_bytes());
    }
}
