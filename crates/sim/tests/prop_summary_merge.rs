//! Shard-merge laws for [`Histogram`]/[`Summary`] (the harness invariant).
//!
//! The figure harness splits a cell's seed range across shards, records
//! each shard's latencies into a private `Histogram`, and folds them back
//! with `Histogram::merge` in shard order. That recombination is only
//! sound if merge obeys the algebra proven here: splitting a sample
//! stream anywhere and merging the pieces reproduces the unsharded
//! summary exactly, merge is associative and commutative, and the empty
//! histogram is a two-sided identity.
#![recursion_limit = "1024"]

use bionic_sim::stats::Histogram;
use bionic_sim::time::SimTime;
use proptest::prelude::*;

/// Record every sample (nanoseconds) into a fresh histogram.
fn hist(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &s in samples {
        h.record(SimTime::from_ns(s as f64));
    }
    h
}

/// Full observable state: the condensed summary plus the quantiles the
/// experiments actually report. Two histograms that agree here are
/// interchangeable everywhere the harness uses them.
fn observe(h: &Histogram) -> impl PartialEq + std::fmt::Debug {
    (h.summary(), h.count(), h.quantile(0.10), h.quantile(0.999))
}

fn samples() -> impl Strategy<Value = Vec<u64>> {
    // Nanosecond latencies spanning sub-ns rounding up to ~10 ms so the
    // split points land in many different histogram buckets.
    prop::collection::vec(0u64..10_000_000, 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Sharding law: recording a stream whole equals splitting it at any
    // cut points, recording each shard separately, and merging the shard
    // histograms back in shard order.
    #[test]
    fn sharded_recording_matches_unsharded(
        xs in samples(),
        cut_a in 0usize..=200,
        cut_b in 0usize..=200,
    ) {
        let whole = hist(&xs);
        let (a, b) = (cut_a.min(xs.len()), cut_b.min(xs.len()));
        let (lo, hi) = (a.min(b), a.max(b));
        let mut merged = hist(&xs[..lo]);
        merged.merge(&hist(&xs[lo..hi]));
        merged.merge(&hist(&xs[hi..]));
        prop_assert_eq!(observe(&merged), observe(&whole));
    }

    // Associativity: `(a ∪ b) ∪ c == a ∪ (b ∪ c)`, so the harness may
    // fold shard outputs pairwise in any grouping.
    #[test]
    fn merge_is_associative(
        xs in samples(),
        ys in samples(),
        zs in samples(),
    ) {
        let mut left = hist(&xs);
        left.merge(&hist(&ys));
        left.merge(&hist(&zs));

        let mut bc = hist(&ys);
        bc.merge(&hist(&zs));
        let mut right = hist(&xs);
        right.merge(&bc);

        prop_assert_eq!(observe(&left), observe(&right));
    }

    // Commutativity: shard order never changes the merged statistics —
    // the harness merges in shard order purely for determinism of
    // side-effects (row order), not because the algebra needs it.
    #[test]
    fn merge_is_commutative(xs in samples(), ys in samples()) {
        let mut ab = hist(&xs);
        ab.merge(&hist(&ys));
        let mut ba = hist(&ys);
        ba.merge(&hist(&xs));
        prop_assert_eq!(observe(&ab), observe(&ba));
    }

    // Identity: the empty histogram is a two-sided unit, so empty shards
    // (more shards than work items) are harmless.
    #[test]
    fn empty_histogram_is_identity(xs in samples()) {
        let whole = hist(&xs);

        let mut right = hist(&xs);
        right.merge(&Histogram::new());
        prop_assert_eq!(observe(&right), observe(&whole));

        let mut left = Histogram::new();
        left.merge(&hist(&xs));
        prop_assert_eq!(observe(&left), observe(&whole));
    }
}
