//! Property tests for the circuit-breaker state machine in isolation.
//!
//! The breaker ([`bionic_sim::fault::CircuitBreaker`]) is the piece of the
//! degraded-mode layer with actual state-machine surface: Closed → Open →
//! HalfOpen driven by observed failures and the sim-time clock. Three
//! properties pin it down:
//!
//! 1. **liveness** — a unit that turns healthy is never stuck Open forever:
//!    once the quarantine elapses, probes are allowed and enough successes
//!    close the breaker again;
//! 2. **safety** — the breaker is never Closed while the trailing run of
//!    failures meets the trip threshold;
//! 3. **determinism** — the same event sequence produces the same state
//!    trajectory, every time.

use bionic_sim::fault::{BreakerConfig, BreakerState, CircuitBreaker};
use bionic_sim::time::SimTime;
use proptest::prelude::*;

/// One observed hardware-attempt outcome, `gap` picoseconds after the
/// previous one.
#[derive(Debug, Clone, Copy)]
struct Event {
    gap_ps: u64,
    success: bool,
}

fn event() -> impl Strategy<Value = Event> {
    (0u64..50_000_000, any::<bool>()).prop_map(|(gap_ps, success)| Event { gap_ps, success })
}

fn config() -> impl Strategy<Value = BreakerConfig> {
    (1u32..8, 1u64..500, 1u32..5).prop_map(|(failure_threshold, open_us, halfopen_successes)| {
        BreakerConfig {
            failure_threshold,
            open_duration: SimTime::from_us(open_us as f64),
            halfopen_successes,
        }
    })
}

/// Drive a breaker through a sequence exactly as the degraded-mode layer
/// does: ask `allow` first, and only record an outcome when an attempt was
/// actually issued. Returns the trajectory of (state-after, allowed).
fn drive(cfg: BreakerConfig, events: &[Event]) -> Vec<(BreakerState, bool)> {
    let mut b = CircuitBreaker::new(cfg);
    let mut now = SimTime::ZERO;
    let mut out = Vec::with_capacity(events.len());
    for e in events {
        now += SimTime::from_ps(e.gap_ps);
        let allowed = b.allow(now);
        if allowed {
            if e.success {
                b.record_success(now);
            } else {
                b.record_failure(now);
            }
        }
        out.push((b.state(), allowed));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Whatever failure history came before, a healthy unit recovers: wait
    // out the quarantine, then `halfopen_successes` successful probes are
    // both *allowed* and sufficient to return the breaker to Closed.
    #[test]
    fn healthy_unit_is_never_stuck_open(
        cfg in config(),
        history in prop::collection::vec(event(), 0..120),
    ) {
        let mut b = CircuitBreaker::new(cfg);
        let mut now = SimTime::ZERO;
        for e in &history {
            now += SimTime::from_ps(e.gap_ps);
            if b.allow(now) {
                if e.success {
                    b.record_success(now);
                } else {
                    b.record_failure(now);
                }
            }
        }
        // The unit turns healthy. Jump past any possible quarantine.
        now += cfg.open_duration + SimTime::from_ps(1);
        for _ in 0..cfg.halfopen_successes {
            prop_assert!(b.allow(now), "recovery probe denied after quarantine elapsed");
            b.record_success(now);
        }
        prop_assert_eq!(b.state(), BreakerState::Closed);
    }

    // The breaker must not report Closed while the trailing run of
    // consecutive recorded failures has reached the trip threshold.
    #[test]
    fn never_closed_while_failures_exceed_threshold(
        cfg in config(),
        events in prop::collection::vec(event(), 1..200),
    ) {
        let mut b = CircuitBreaker::new(cfg);
        let mut now = SimTime::ZERO;
        let mut trailing_failures = 0u32;
        for e in &events {
            now += SimTime::from_ps(e.gap_ps);
            if b.allow(now) {
                if e.success {
                    b.record_success(now);
                    trailing_failures = 0;
                } else {
                    b.record_failure(now);
                    trailing_failures += 1;
                }
            }
            if trailing_failures >= cfg.failure_threshold {
                prop_assert!(
                    b.state() != BreakerState::Closed,
                    "closed with {} trailing failures (threshold {})",
                    trailing_failures,
                    cfg.failure_threshold
                );
            }
        }
    }

    // The machine has no hidden nondeterminism: replaying the same event
    // sequence yields the same (state, allowed) trajectory.
    #[test]
    fn transitions_are_deterministic(
        cfg in config(),
        events in prop::collection::vec(event(), 0..200),
    ) {
        let a = drive(cfg, &events);
        let b = drive(cfg, &events);
        prop_assert_eq!(a, b);
    }

    // Open means open: between tripping and `open_duration` elapsing, every
    // attempt is denied (the quarantine actually saves the watchdog cost).
    #[test]
    fn open_denies_until_quarantine_elapses(
        cfg in config(),
        probe_frac in 0.0f64..1.0,
    ) {
        let mut b = CircuitBreaker::new(cfg);
        let t0 = SimTime::from_us(1.0);
        for _ in 0..cfg.failure_threshold {
            prop_assert!(b.allow(t0));
            b.record_failure(t0);
        }
        prop_assert_eq!(b.state(), BreakerState::Open);
        // A probe strictly inside the quarantine window is denied...
        let inside = t0 + cfg.open_duration * probe_frac.min(0.999);
        if inside < t0 + cfg.open_duration {
            prop_assert!(!b.allow(inside));
            prop_assert_eq!(b.state(), BreakerState::Open);
        }
        // ...and one at/after the boundary is allowed (HalfOpen).
        prop_assert!(b.allow(t0 + cfg.open_duration));
        prop_assert_eq!(b.state(), BreakerState::HalfOpen);
    }
}
