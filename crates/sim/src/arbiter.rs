//! Shared-bandwidth arbitration between concurrent engine clients (§6).
//!
//! Until the hybrid workload existed, every consumer of SG-DRAM and the
//! PCIe bridge priced its traffic independently: the scanner computed an
//! analytic stream time, the probe engine charged accesses, and nobody saw
//! anybody else's queue. Figure 4's interesting behaviour is exactly the
//! opposite — transactions and analytics *competing* for the same 80 GB/s
//! of scatter-gather memory and the same 4 GB/s bridge.
//!
//! [`SharedBandwidth`] is a deterministic weighted round-robin arbiter
//! modeled as a *grant ledger*: time is cut into fixed windows of length
//! `W`; each window can move at most `capacity = bw × W` bytes; a request
//! books its bytes into consecutive windows starting at its arrival. When
//! other clients have recent grants the client is capped at its weighted
//! share of each window (round-robin under contention); when alone it may
//! fill windows completely (work conservation). Completion time is the
//! drain point of the last window touched, so a small transactional
//! request landing in a window already loaded with scan traffic observes
//! that traffic as queueing delay — and vice versa.
//!
//! Because grants are booked by *arrival time*, not submission order, the
//! ledger tolerates the engine's functional-order submission the same way
//! [`crate::server::FluidQueue`] does: a far-future booking never
//! penalizes an earlier-timestamped request, which lands in its own
//! (earlier) windows.
//!
//! Two independently maintained ledgers back the conservation invariant
//! the E13 property test checks: per-window fills never exceed capacity,
//! and the per-client byte totals sum exactly to the grand total.

use crate::time::SimTime;
use std::collections::BTreeMap;

/// The two contending clients of the hybrid engine (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BwClient {
    /// The DORA transaction engine: probes, log writes, overlay reads.
    Oltp,
    /// The enhanced scanner streaming analytics over the overlay.
    Olap,
}

impl BwClient {
    /// Client slot in an arbiter built with [`SharedBandwidth::two_client`].
    pub fn index(self) -> usize {
        match self {
            BwClient::Oltp => 0,
            BwClient::Olap => 1,
        }
    }

    /// Stable label for metrics and CSV columns.
    pub fn label(self) -> &'static str {
        match self {
            BwClient::Oltp => "oltp",
            BwClient::Olap => "olap",
        }
    }
}

/// How many windows back a rival's grant still counts as "active" when
/// deciding whether a client is contended (and therefore share-capped).
const ACTIVITY_HORIZON: u64 = 2;

/// One arbitration window's fill state.
#[derive(Debug, Clone)]
struct Window {
    total: u64,
    per_client: Vec<u64>,
}

/// Outcome of one bandwidth request.
#[derive(Debug, Clone, Copy)]
pub struct Grant {
    /// When the last byte drains.
    pub done: SimTime,
    /// Delay beyond the uncontended wire time `bytes / bw` — what the
    /// client lost to arbitration.
    pub queued: SimTime,
}

/// A deterministic windowed weighted-share bandwidth arbiter.
#[derive(Debug, Clone)]
pub struct SharedBandwidth {
    bytes_per_sec: f64,
    window: SimTime,
    capacity: u64,
    weights: Vec<u64>,
    weight_sum: u64,
    windows: BTreeMap<u64, Window>,
    /// Ledger A: bytes granted per client, maintained at grant time.
    per_client_bytes: Vec<u64>,
    /// Ledger B: grand-total bytes, maintained independently of ledger A
    /// so the conservation check compares two bookkeeping paths.
    total_bytes: u64,
    max_fill: u64,
    requests: u64,
    queued_total: SimTime,
    /// Per-client arbitration delay totals (`queued_total` is their sum,
    /// maintained independently as a third conservation check).
    per_client_queued: Vec<SimTime>,
    /// Per-client count of requests that observed a nonzero queueing
    /// delay — the "how often did backpressure bite" rate the windowed
    /// snapshots report.
    per_client_wait_events: Vec<u64>,
}

impl SharedBandwidth {
    /// An arbiter over a path of `bytes_per_sec`, arbitrating in windows of
    /// `window`, with one weight per client (grant shares under contention
    /// are proportional to weight).
    pub fn new(bytes_per_sec: f64, window: SimTime, weights: &[u64]) -> Self {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        assert!(!window.is_zero(), "window must be positive");
        assert!(!weights.is_empty(), "need at least one client");
        assert!(weights.iter().all(|&w| w > 0), "weights must be positive");
        let capacity = (bytes_per_sec * window.as_secs()).round() as u64;
        assert!(capacity > 0, "window too short for this bandwidth");
        SharedBandwidth {
            bytes_per_sec,
            window,
            capacity,
            weights: weights.to_vec(),
            weight_sum: weights.iter().sum(),
            windows: BTreeMap::new(),
            per_client_bytes: vec![0; weights.len()],
            total_bytes: 0,
            max_fill: 0,
            requests: 0,
            queued_total: SimTime::ZERO,
            per_client_queued: vec![SimTime::ZERO; weights.len()],
            per_client_wait_events: vec![0; weights.len()],
        }
    }

    /// An equal-weight OLTP/OLAP arbiter, indexed by [`BwClient::index`].
    pub fn two_client(bytes_per_sec: f64, window: SimTime) -> Self {
        Self::new(bytes_per_sec, window, &[1, 1])
    }

    /// Bytes one window can move at full rate.
    pub fn capacity_per_window(&self) -> u64 {
        self.capacity
    }

    /// The arbitration window length.
    pub fn window(&self) -> SimTime {
        self.window
    }

    fn window_index(&self, at: SimTime) -> u64 {
        at.as_ps() / self.window.as_ps()
    }

    fn window_start(&self, idx: u64) -> SimTime {
        SimTime::from_ps(idx * self.window.as_ps())
    }

    /// A client's reserved per-window share under contention, never zero.
    fn quota(&self, client: usize) -> u64 {
        (self.capacity * self.weights[client] / self.weight_sum).max(1)
    }

    /// Does any rival of `client` hold grants in `[w - ACTIVITY_HORIZON, w]`?
    fn contended(&self, client: usize, w: u64) -> bool {
        let lo = w.saturating_sub(ACTIVITY_HORIZON);
        self.windows
            .range(lo..=w)
            .any(|(_, win)| win.total > win.per_client[client])
    }

    /// Uncontended wire time for `bytes`.
    pub fn wire_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs(bytes as f64 / self.bytes_per_sec)
    }

    /// Book `bytes` for `client` arriving at `arrive`. Returns when the
    /// last byte drains and how much of that was arbitration delay.
    pub fn request(&mut self, client: usize, arrive: SimTime, bytes: u64) -> Grant {
        assert!(client < self.weights.len(), "unknown client {client}");
        self.requests += 1;
        if bytes == 0 {
            return Grant {
                done: arrive,
                queued: SimTime::ZERO,
            };
        }
        let quota = self.quota(client);
        let mut w = self.window_index(arrive);
        let mut remaining = bytes;
        let mut last_fill = 0u64;
        while remaining > 0 {
            let capped = self.contended(client, w);
            let n_clients = self.weights.len();
            let win = self.windows.entry(w).or_insert_with(|| Window {
                total: 0,
                per_client: vec![0; n_clients],
            });
            let free = self.capacity - win.total;
            let allowed = if capped {
                free.min(quota.saturating_sub(win.per_client[client]))
            } else {
                free
            };
            let take = remaining.min(allowed);
            if take > 0 {
                win.total += take;
                win.per_client[client] += take;
                self.per_client_bytes[client] += take;
                self.total_bytes += take;
                remaining -= take;
                last_fill = win.total;
                self.max_fill = self.max_fill.max(win.total);
            }
            if remaining > 0 {
                w += 1;
            }
        }
        // Drain point of the last window touched: the window's scheduled
        // traffic (ours included) empties at `fill/capacity` through it.
        let drained =
            self.window_start(w) + self.window * (last_fill as f64 / self.capacity as f64);
        let floor = arrive + self.wire_time(bytes);
        let done = drained.max(floor);
        let queued = done - floor;
        self.queued_total += queued;
        self.per_client_queued[client] += queued;
        if !queued.is_zero() {
            self.per_client_wait_events[client] += 1;
        }
        Grant { done, queued }
    }

    /// Total bytes granted to one client.
    pub fn client_bytes(&self, client: usize) -> u64 {
        self.per_client_bytes[client]
    }

    /// Total bytes granted across all clients (independent ledger).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Requests arbitrated so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Sum of all arbitration delays handed out.
    pub fn queued_total(&self) -> SimTime {
        self.queued_total
    }

    /// Arbitration delay handed to one client.
    pub fn client_queued(&self, client: usize) -> SimTime {
        self.per_client_queued[client]
    }

    /// Number of one client's requests that observed a nonzero queueing
    /// delay.
    pub fn client_wait_events(&self, client: usize) -> u64 {
        self.per_client_wait_events[client]
    }

    /// Peak fill of any window as a fraction of capacity (≤ 1 when
    /// conservation holds).
    pub fn max_fill_frac(&self) -> f64 {
        self.max_fill as f64 / self.capacity as f64
    }

    /// Mean fill across every window touched, as a fraction of capacity —
    /// the arbiter's occupancy over its active lifetime.
    pub fn mean_fill_frac(&self) -> f64 {
        if self.windows.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.windows.values().map(|w| w.total).sum();
        sum as f64 / (self.capacity as f64 * self.windows.len() as f64)
    }

    /// Windows that received at least one grant.
    pub fn windows_touched(&self) -> usize {
        self.windows.len()
    }

    /// Verify the conservation invariant: every window's fill is within
    /// capacity and equals the sum of its per-client grants, and the
    /// independently maintained per-client ledgers sum exactly to the
    /// grand total. Returns a description of the first violation.
    pub fn check_conservation(&self) -> Result<(), String> {
        let mut recomputed = vec![0u64; self.weights.len()];
        for (idx, win) in &self.windows {
            if win.total > self.capacity {
                return Err(format!(
                    "window {idx}: granted {} > capacity {}",
                    win.total, self.capacity
                ));
            }
            let sum: u64 = win.per_client.iter().sum();
            if sum != win.total {
                return Err(format!(
                    "window {idx}: per-client sum {sum} != total {}",
                    win.total
                ));
            }
            for (c, b) in win.per_client.iter().enumerate() {
                recomputed[c] += b;
            }
        }
        if recomputed != self.per_client_bytes {
            return Err(format!(
                "per-client ledger {:?} disagrees with window sums {recomputed:?}",
                self.per_client_bytes
            ));
        }
        let client_sum: u64 = self.per_client_bytes.iter().sum();
        if client_sum != self.total_bytes {
            return Err(format!(
                "client ledgers sum to {client_sum}, grand total says {}",
                self.total_bytes
            ));
        }
        let queued_sum: SimTime = self
            .per_client_queued
            .iter()
            .fold(SimTime::ZERO, |acc, &q| acc + q);
        if queued_sum != self.queued_total {
            return Err(format!(
                "per-client queued delays sum to {queued_sum}, total says {}",
                self.queued_total
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sg() -> SharedBandwidth {
        // 80 GB/s arbitrated in 5 us windows: 400 KB per window.
        SharedBandwidth::two_client(80e9, SimTime::from_us(5.0))
    }

    #[test]
    fn solo_client_streams_at_full_bandwidth() {
        let mut a = sg();
        // 8 MB solo: ~100 us of wire time, window quantization adds < 1 window.
        let g = a.request(BwClient::Olap.index(), SimTime::ZERO, 8 << 20);
        let wire = a.wire_time(8 << 20);
        assert!(g.done < wire + a.window(), "done={} wire={wire}", g.done);
        assert!(g.queued < a.window());
        a.check_conservation().unwrap();
    }

    #[test]
    fn zero_byte_request_is_free() {
        let mut a = sg();
        let g = a.request(0, SimTime::from_us(3.0), 0);
        assert_eq!(g.done, SimTime::from_us(3.0));
        assert_eq!(g.queued, SimTime::ZERO);
    }

    #[test]
    fn rival_traffic_becomes_queueing_delay() {
        let mut a = sg();
        // OLTP establishes activity, then a scan loads the next window.
        a.request(BwClient::Oltp.index(), SimTime::ZERO, 64);
        a.request(BwClient::Olap.index(), SimTime::from_us(5.1), 1 << 20);
        // A small transactional read landing inside the scan's window sees
        // the scan's fill as delay; the same read far past it does not.
        let hot = a.request(BwClient::Oltp.index(), SimTime::from_us(5.2), 64);
        assert!(
            hot.queued > SimTime::from_us(1.0),
            "queued={} should reflect the scan fill",
            hot.queued
        );
        let cold = a.request(BwClient::Oltp.index(), SimTime::from_ms(1.0), 64);
        assert!(cold.queued < SimTime::from_ns(10.0), "cold={}", cold.queued);
        a.check_conservation().unwrap();
    }

    #[test]
    fn contended_client_is_capped_at_its_share() {
        let mut a = sg();
        // OLTP stays active across the scan's whole span (as a running
        // transaction stream does), so the scan is capped at half of every
        // window and takes ~2x the solo wire time.
        let mut at = SimTime::ZERO;
        for _ in 0..80 {
            a.request(BwClient::Oltp.index(), at, 64);
            at += SimTime::from_us(5.0);
        }
        let g = a.request(BwClient::Olap.index(), SimTime::from_ns(100.0), 8 << 20);
        let wire = a.wire_time(8 << 20);
        assert!(
            g.done.as_secs() > 1.8 * wire.as_secs(),
            "done={} wire={wire}",
            g.done
        );
        a.check_conservation().unwrap();
    }

    #[test]
    fn out_of_order_arrivals_do_not_see_phantom_backlog() {
        let mut a = sg();
        // A far-future booking must not delay an earlier-timestamped one.
        a.request(BwClient::Olap.index(), SimTime::from_ms(10.0), 4 << 20);
        let g = a.request(BwClient::Oltp.index(), SimTime::from_us(1.0), 64);
        assert!(g.queued < SimTime::from_ns(10.0), "queued={}", g.queued);
        a.check_conservation().unwrap();
    }

    #[test]
    fn windows_never_exceed_capacity_under_pressure() {
        let mut a = sg();
        let mut at = SimTime::ZERO;
        for i in 0..200u64 {
            let (client, bytes) = if i % 3 == 0 {
                (BwClient::Olap.index(), 300_000)
            } else {
                (BwClient::Oltp.index(), 512)
            };
            a.request(client, at, bytes);
            at += SimTime::from_us(1.7);
        }
        assert!(a.max_fill_frac() <= 1.0 + 1e-12);
        assert_eq!(
            a.client_bytes(0) + a.client_bytes(1),
            a.total_bytes(),
            "ledgers must agree"
        );
        a.check_conservation().unwrap();
    }

    #[test]
    fn per_client_wait_accounting_matches_grants() {
        let mut a = sg();
        // A scan loads a window, then OLTP lands inside it and waits.
        a.request(BwClient::Oltp.index(), SimTime::ZERO, 64);
        a.request(BwClient::Olap.index(), SimTime::from_us(5.1), 1 << 20);
        let hot = a.request(BwClient::Oltp.index(), SimTime::from_us(5.2), 64);
        assert!(!hot.queued.is_zero());
        assert_eq!(a.client_wait_events(BwClient::Oltp.index()), 1);
        assert_eq!(
            a.client_queued(BwClient::Oltp.index()) + a.client_queued(BwClient::Olap.index()),
            a.queued_total(),
            "per-client queued delays must sum to the total"
        );
        a.check_conservation().unwrap();
    }

    #[test]
    fn weights_skew_the_contended_share() {
        let mut fair = SharedBandwidth::new(80e9, SimTime::from_us(5.0), &[1, 1]);
        let mut skewed = SharedBandwidth::new(80e9, SimTime::from_us(5.0), &[1, 3]);
        for a in [&mut fair, &mut skewed] {
            a.request(0, SimTime::ZERO, 64);
        }
        let f = fair.request(1, SimTime::from_ns(50.0), 8 << 20);
        let s = skewed.request(1, SimTime::from_ns(50.0), 8 << 20);
        assert!(s.done < f.done, "3/4 share must beat 1/2 share");
    }
}
