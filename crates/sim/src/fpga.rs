//! Generic reconfigurable-fabric models.
//!
//! The domain crates (btree, wal, queue, overlay, scan) each build a
//! specialized engine out of an [`FpgaUnit`] — a clocked, pipelined function
//! unit with a per-op energy — placed on an [`FpgaFabric`] that enforces an
//! area budget. Area is what makes "which operations deserve hardware?" a
//! real design question rather than a free lunch, mirroring §5's observation
//! that a *purely* hardware OLTP engine is uneconomical.

use crate::energy::Energy;
use crate::server::PipelinedUnit;
use crate::time::SimTime;

/// One synthesized function unit on the fabric.
#[derive(Debug, Clone)]
pub struct FpgaUnit {
    name: &'static str,
    clock_period: SimTime,
    cycles_per_op: u64,
    pipeline: PipelinedUnit,
    energy_per_op: Energy,
    area_slices: u64,
    ops: u64,
}

impl FpgaUnit {
    /// Create a unit.
    ///
    /// * `clock_period` — fabric clock (the HC-2 preset is 200 MHz → 5 ns).
    /// * `cycles_per_op` — latency of one operation through the unit.
    /// * `depth` — pipeline depth (operations in flight).
    /// * `energy_per_op` — switching energy of one operation.
    /// * `area_slices` — fabric area consumed.
    pub fn new(
        name: &'static str,
        clock_period: SimTime,
        cycles_per_op: u64,
        depth: usize,
        energy_per_op: Energy,
        area_slices: u64,
    ) -> Self {
        let latency = clock_period * cycles_per_op;
        FpgaUnit {
            name,
            clock_period,
            cycles_per_op,
            pipeline: PipelinedUnit::new(latency, clock_period, depth),
            energy_per_op,
            area_slices,
            ops: 0,
        }
    }

    /// Unit name (for reports).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Submit one operation arriving at `arrive`; returns completion time
    /// and energy spent.
    pub fn submit(&mut self, arrive: SimTime) -> (SimTime, Energy) {
        self.ops += 1;
        (self.pipeline.submit(arrive), self.energy_per_op)
    }

    /// Latency of one operation through the unit.
    pub fn op_latency(&self) -> SimTime {
        self.clock_period * self.cycles_per_op
    }

    /// Fabric clock period.
    pub fn clock_period(&self) -> SimTime {
        self.clock_period
    }

    /// Area consumed, in slices.
    pub fn area_slices(&self) -> u64 {
        self.area_slices
    }

    /// Operations completed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }
}

/// The whole reconfigurable fabric: a finite pool of slices.
#[derive(Debug, Clone)]
pub struct FpgaFabric {
    total_slices: u64,
    used_slices: u64,
    clock_period: SimTime,
    placed: Vec<(&'static str, u64)>,
}

/// Error returned when a unit does not fit on the fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfArea {
    /// Unit that failed to place.
    pub unit: &'static str,
    /// Slices the unit needs.
    pub requested: u64,
    /// Slices still free.
    pub available: u64,
}

impl core::fmt::Display for OutOfArea {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "unit '{}' needs {} slices but only {} are free",
            self.unit, self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfArea {}

impl FpgaFabric {
    /// A fabric with `total_slices` of area and the given clock.
    pub fn new(total_slices: u64, clock_period: SimTime) -> Self {
        FpgaFabric {
            total_slices,
            used_slices: 0,
            clock_period,
            placed: Vec::new(),
        }
    }

    /// The HC-2-class preset: a large Virtex-class part at 200 MHz. The
    /// slice count is an abstract budget; what matters is that the four §5
    /// engines together fit comfortably while leaving room for the scanner.
    pub fn hc2() -> Self {
        FpgaFabric::new(150_000, SimTime::from_ns(5.0))
    }

    /// Fabric clock period.
    pub fn clock_period(&self) -> SimTime {
        self.clock_period
    }

    /// Place a unit on the fabric, consuming area.
    pub fn place(
        &mut self,
        name: &'static str,
        cycles_per_op: u64,
        depth: usize,
        energy_per_op: Energy,
        area_slices: u64,
    ) -> Result<FpgaUnit, OutOfArea> {
        let available = self.total_slices - self.used_slices;
        if area_slices > available {
            return Err(OutOfArea {
                unit: name,
                requested: area_slices,
                available,
            });
        }
        self.used_slices += area_slices;
        self.placed.push((name, area_slices));
        Ok(FpgaUnit::new(
            name,
            self.clock_period,
            cycles_per_op,
            depth,
            energy_per_op,
            area_slices,
        ))
    }

    /// Total slice budget of the part.
    pub fn total_slices(&self) -> u64 {
        self.total_slices
    }

    /// Slices still free.
    pub fn free_slices(&self) -> u64 {
        self.total_slices - self.used_slices
    }

    /// Fraction of the fabric in use.
    pub fn occupancy(&self) -> f64 {
        self.used_slices as f64 / self.total_slices as f64
    }

    /// Placed units and their areas.
    pub fn placements(&self) -> &[(&'static str, u64)] {
        &self.placed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_latency_is_cycles_times_clock() {
        let u = FpgaUnit::new("t", SimTime::from_ns(5.0), 4, 8, Energy::from_pj(50.0), 100);
        assert_eq!(u.op_latency().as_ns(), 20.0);
    }

    #[test]
    fn unit_pipelines_one_op_per_cycle() {
        let mut u = FpgaUnit::new(
            "t",
            SimTime::from_ns(5.0),
            10,
            16,
            Energy::from_pj(50.0),
            100,
        );
        let mut last = SimTime::ZERO;
        for _ in 0..100 {
            let (d, _) = u.submit(SimTime::ZERO);
            last = d;
        }
        // 10-cycle latency + 99 initiations at 1/cycle.
        assert_eq!(last.as_ns(), (10.0 + 99.0) * 5.0);
        assert_eq!(u.ops(), 100);
    }

    #[test]
    fn fabric_enforces_area_budget() {
        let mut f = FpgaFabric::new(1000, SimTime::from_ns(5.0));
        let a = f.place("a", 1, 1, Energy::ZERO, 600);
        assert!(a.is_ok());
        let b = f.place("b", 1, 1, Energy::ZERO, 600);
        let err = b.unwrap_err();
        assert_eq!(err.available, 400);
        assert_eq!(err.requested, 600);
        assert_eq!(f.free_slices(), 400);
        assert!((f.occupancy() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn hc2_fits_all_five_engines() {
        // The §5 architecture: probe, log, queue, overlay, scanner.
        let mut f = FpgaFabric::hc2();
        for (name, area) in [
            ("tree-probe", 20_000u64),
            ("log-insert", 10_000),
            ("queue", 8_000),
            ("overlay", 25_000),
            ("scanner", 30_000),
        ] {
            f.place(name, 1, 8, Energy::from_pj(50.0), area).unwrap();
        }
        assert!(f.occupancy() < 0.7);
        assert_eq!(f.placements().len(), 5);
    }
}
