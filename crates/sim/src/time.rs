//! Simulated time.
//!
//! The simulator keeps time in integer **picoseconds**. The paper's platform
//! mixes effects five orders of magnitude apart — 0.4 ns instruction slots on
//! a 2.5 GHz core against 5 ms SAS seeks — so a picosecond tick keeps every
//! charge exact (no drift from rounding sub-nanosecond instruction costs)
//! while `u64` still covers ~213 days of simulated time.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, or a duration, in picoseconds.
///
/// `SimTime` is deliberately a single type for both instants and durations;
/// the simulator's arithmetic is simple enough that the extra type safety of
/// separate types is not worth the friction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero — the start of every simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "never happens" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Construct from nanoseconds (fractional values allowed).
    #[inline]
    pub fn from_ns(ns: f64) -> Self {
        SimTime((ns * 1e3).round() as u64)
    }

    /// Construct from microseconds.
    #[inline]
    pub fn from_us(us: f64) -> Self {
        SimTime((us * 1e6).round() as u64)
    }

    /// Construct from milliseconds.
    #[inline]
    pub fn from_ms(ms: f64) -> Self {
        SimTime((ms * 1e9).round() as u64)
    }

    /// Construct from seconds.
    #[inline]
    pub fn from_secs(s: f64) -> Self {
        SimTime((s * 1e12).round() as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in nanoseconds.
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Value in microseconds.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in milliseconds.
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Value in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction: `self - rhs`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Is this the zero time/duration?
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: f64) -> SimTime {
        SimTime((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    /// Human-oriented display: picks the largest unit that keeps the value
    /// above 1.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000_000 {
            write!(f, "{:.3}s", self.as_secs())
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_ms())
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us())
        } else if ps >= 1_000 {
            write!(f, "{:.3}ns", self.as_ns())
        } else {
            write!(f, "{ps}ps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_round_trips() {
        assert_eq!(SimTime::from_ns(1.0).as_ps(), 1_000);
        assert_eq!(SimTime::from_us(2.0).as_ps(), 2_000_000);
        assert_eq!(SimTime::from_ms(5.0).as_ps(), 5_000_000_000);
        assert_eq!(SimTime::from_secs(1.0).as_ps(), 1_000_000_000_000);
        assert!((SimTime::from_ns(400.0).as_ns() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn fractional_nanoseconds_are_exact_to_the_picosecond() {
        // A 2.5 GHz instruction slot is 0.4 ns = 400 ps; 1000 of them must be
        // exactly 400 ns, not 0 (as it would be with integer-ns rounding).
        let slot = SimTime::from_ns(0.4);
        assert_eq!(slot.as_ps(), 400);
        assert_eq!((slot * 1000).as_ns(), 400.0);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::from_ns(10.0);
        let b = SimTime::from_ns(3.0);
        assert_eq!((a + b).as_ns(), 13.0);
        assert_eq!((a - b).as_ns(), 7.0);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert!(b < a);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!((a * 3u64).as_ns(), 30.0);
        assert_eq!((a / 2).as_ns(), 5.0);
        assert_eq!((a * 0.5).as_ns(), 5.0);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = (1..=4).map(|i| SimTime::from_ns(i as f64)).sum();
        assert_eq!(total.as_ns(), 10.0);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(format!("{}", SimTime::from_ps(12)), "12ps");
        assert_eq!(format!("{}", SimTime::from_ns(400.0)), "400.000ns");
        assert_eq!(format!("{}", SimTime::from_us(2.0)), "2.000us");
        assert_eq!(format!("{}", SimTime::from_ms(5.0)), "5.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(1.5)), "1.500s");
    }
}
