//! Memory models: the host cache hierarchy and the FPGA's SG-DRAM.
//!
//! §3 of the paper blames OLTP's "death by a thousand paper cuts" on
//! fine-grained memory latencies that general-purpose hardware can't hide.
//! [`CacheHierarchy`] reproduces those paper cuts with per-access-class hit
//! ratios; [`SgDram`] reproduces the Convey scatter-gather memory that makes
//! pointer chasing *schedulable*: fixed 400 ns latency, massive request
//! parallelism, no cache to miss.

use crate::energy::Energy;
use crate::rng::SplitMix64;
use crate::server::PipelinedUnit;
use crate::time::SimTime;

/// Locality class of a memory access, used to pick hit probabilities.
///
/// The classes correspond to the access patterns §5 discusses: hot metadata
/// that lives in L1, index inner nodes with mid-hierarchy locality, the
/// pointer-chasing tail (leaves, records, log tails), and hardware-prefetched
/// sequential scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessClass {
    /// Hot, tiny working set: queue heads, partition descriptors, latches.
    Hot,
    /// B+tree inner nodes: cache-resident for upper levels.
    Index,
    /// Random leaf/record/log accesses — the classic OLTP pointer chase.
    PointerChase,
    /// Sequential scans with effective prefetching.
    Sequential,
}

impl AccessClass {
    /// All classes, for table-driven tests and reports.
    pub const ALL: [AccessClass; 4] = [
        AccessClass::Hot,
        AccessClass::Index,
        AccessClass::PointerChase,
        AccessClass::Sequential,
    ];

    /// Short stable label for reports and metric names.
    pub fn label(self) -> &'static str {
        match self {
            AccessClass::Hot => "hot",
            AccessClass::Index => "index",
            AccessClass::PointerChase => "pointer-chase",
            AccessClass::Sequential => "sequential",
        }
    }
}

/// Which level of the hierarchy served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemLevel {
    /// First-level cache.
    L1,
    /// Second-level cache.
    L2,
    /// Last-level cache.
    L3,
    /// Host DRAM.
    Dram,
}

/// Outcome of a single modeled access.
#[derive(Debug, Clone, Copy)]
pub struct AccessOutcome {
    /// Stall time charged to the accessing core.
    pub latency: SimTime,
    /// Energy spent in SRAM/DRAM.
    pub energy: Energy,
    /// Level that served the access.
    pub level: MemLevel,
}

/// Per-level timing/energy plus hit probabilities per access class.
#[derive(Debug, Clone)]
pub struct CacheHierarchyConfig {
    /// Latency of L1/L2/L3 hits and DRAM, in order.
    pub level_latency: [SimTime; 4],
    /// Energy of one access served at each level (64 B line granularity).
    pub level_energy: [Energy; 4],
    /// `hit_prob[class][level]` for L1..L3; the DRAM probability is the
    /// remainder. Probabilities are *conditional on reaching the level*? No:
    /// they are absolute shares and must sum to ≤ 1 per class.
    pub hit_prob: [[f64; 3]; 4],
}

impl CacheHierarchyConfig {
    /// A 2011-class Xeon, matching the platform of Figure 2 and the cache
    /// behaviour reported for OLTP by Ailamaki et al. \[1\]: indexes thrash
    /// the mid-hierarchy, record accesses mostly miss to DRAM.
    pub fn xeon_oltp() -> Self {
        CacheHierarchyConfig {
            level_latency: [
                SimTime::from_ns(1.2),
                SimTime::from_ns(4.0),
                SimTime::from_ns(16.0),
                SimTime::from_ns(100.0),
            ],
            level_energy: [
                Energy::from_nj(0.05),
                Energy::from_nj(0.2),
                Energy::from_nj(0.6),
                Energy::from_nj(20.0),
            ],
            hit_prob: [
                // Hot: essentially L1-resident.
                [0.95, 0.04, 0.009],
                // Index: upper tree levels cache well, lower don't.
                [0.10, 0.30, 0.40],
                // PointerChase: mostly DRAM.
                [0.05, 0.10, 0.15],
                // Sequential: prefetchers hide most of the hierarchy.
                [0.60, 0.25, 0.10],
            ],
        }
    }
}

fn class_index(c: AccessClass) -> usize {
    match c {
        AccessClass::Hot => 0,
        AccessClass::Index => 1,
        AccessClass::PointerChase => 2,
        AccessClass::Sequential => 3,
    }
}

/// A probabilistic host cache hierarchy with deterministic randomness.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    cfg: CacheHierarchyConfig,
    rng: SplitMix64,
    hits: [[u64; 4]; 4], // [class][level]
}

impl CacheHierarchy {
    /// Build a hierarchy from a config and RNG seed.
    pub fn new(cfg: CacheHierarchyConfig, seed: u64) -> Self {
        for class in &cfg.hit_prob {
            let s: f64 = class.iter().sum();
            assert!(s <= 1.0 + 1e-9, "hit probabilities exceed 1: {s}");
        }
        CacheHierarchy {
            cfg,
            rng: SplitMix64::new(seed),
            hits: [[0; 4]; 4],
        }
    }

    /// The default OLTP-tuned hierarchy.
    pub fn xeon_oltp(seed: u64) -> Self {
        Self::new(CacheHierarchyConfig::xeon_oltp(), seed)
    }

    /// Model one access of the given class.
    pub fn access(&mut self, class: AccessClass) -> AccessOutcome {
        let ci = class_index(class);
        let p = self.cfg.hit_prob[ci];
        let x = self.rng.next_f64();
        let (li, level) = if x < p[0] {
            (0, MemLevel::L1)
        } else if x < p[0] + p[1] {
            (1, MemLevel::L2)
        } else if x < p[0] + p[1] + p[2] {
            (2, MemLevel::L3)
        } else {
            (3, MemLevel::Dram)
        };
        self.hits[ci][li] += 1;
        AccessOutcome {
            latency: self.cfg.level_latency[li],
            energy: self.cfg.level_energy[li],
            level,
        }
    }

    /// Model `n` accesses of one class, returning summed latency and energy.
    pub fn access_many(&mut self, class: AccessClass, n: u64) -> (SimTime, Energy) {
        let mut t = SimTime::ZERO;
        let mut e = Energy::ZERO;
        for _ in 0..n {
            let o = self.access(class);
            t += o.latency;
            e += o.energy;
        }
        (t, e)
    }

    /// Expected (mean) latency of one access of `class` — the analytic value
    /// the probabilistic model converges to.
    pub fn expected_latency(&self, class: AccessClass) -> SimTime {
        let ci = class_index(class);
        let p = self.cfg.hit_prob[ci];
        let p_dram = (1.0 - p.iter().sum::<f64>()).max(0.0);
        let mut ns = 0.0;
        for (prob, lat) in p.iter().zip(&self.cfg.level_latency) {
            ns += prob * lat.as_ns();
        }
        ns += p_dram * self.cfg.level_latency[3].as_ns();
        SimTime::from_ns(ns)
    }

    /// Observed hit counts `[L1, L2, L3, DRAM]` for a class.
    pub fn hit_counts(&self, class: AccessClass) -> [u64; 4] {
        self.hits[class_index(class)]
    }
}

/// The FPGA-side scatter-gather DRAM of Figure 2: 80 GB/s of random 64-bit
/// requests at a flat 400 ns, uncached.
///
/// Modeled as a very deep pipeline: the initiation interval enforces the
/// bandwidth limit, the depth (4096 in the HC-2 preset) reflects the
/// controllers' reorder capacity, and the flat latency is what makes the
/// paper's asynchronous-offload scheduling argument work.
#[derive(Debug, Clone)]
pub struct SgDram {
    unit: PipelinedUnit,
    request_bytes: u64,
    energy_per_access: Energy,
    accesses: u64,
}

impl SgDram {
    /// Build an SG-DRAM model.
    pub fn new(
        bytes_per_sec: f64,
        latency: SimTime,
        request_bytes: u64,
        depth: usize,
        energy_per_access: Energy,
    ) -> Self {
        let ii = SimTime::from_secs(request_bytes as f64 / bytes_per_sec);
        SgDram {
            unit: PipelinedUnit::new(latency, ii, depth),
            request_bytes,
            energy_per_access,
            accesses: 0,
        }
    }

    /// The HC-2 preset: 80 GB/s, 400 ns, 8-byte requests. Energy per access
    /// (~2 nJ) is scaled from DRAM line-access energy to the 64-bit request
    /// size, with no cache hierarchy in front to add SRAM costs.
    pub fn hc2() -> Self {
        SgDram::new(80e9, SimTime::from_ns(400.0), 8, 4096, Energy::from_nj(2.0))
    }

    /// Issue one random access at `arrive`; returns completion and energy.
    ///
    /// Accesses must be submitted in non-decreasing arrival order — the
    /// pipelined model serializes issue order. Units that interleave many
    /// dependent chains (e.g. the tree-probe engine) should instead compute
    /// chain latency from [`SgDram::latency`] and account consumption with
    /// [`SgDram::charge_accesses`].
    pub fn access(&mut self, arrive: SimTime) -> (SimTime, Energy) {
        self.accesses += 1;
        (self.unit.submit(arrive), self.energy_per_access)
    }

    /// Account for `n` accesses performed by a unit that models its own
    /// timing: bumps counters and returns the energy, without engaging the
    /// pipeline. Probe-scale consumers use a few MB/s of an 80 GB/s part, so
    /// forgoing bandwidth contention here is a documented simplification.
    pub fn charge_accesses(&mut self, n: u64) -> Energy {
        self.accesses += n;
        self.energy_per_access * n
    }

    /// Fixed access latency (uncontended).
    pub fn latency(&self) -> SimTime {
        self.unit.latency()
    }

    /// Bytes per request.
    pub fn request_bytes(&self) -> u64 {
        self.request_bytes
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_latency_converges_to_expectation() {
        let mut h = CacheHierarchy::xeon_oltp(1);
        let n = 200_000;
        let (t, _) = h.access_many(AccessClass::PointerChase, n);
        let mean = t.as_ns() / n as f64;
        let expect = h.expected_latency(AccessClass::PointerChase).as_ns();
        assert!(
            (mean - expect).abs() / expect < 0.02,
            "mean={mean} expect={expect}"
        );
    }

    #[test]
    fn hot_is_much_cheaper_than_pointer_chase() {
        let h = CacheHierarchy::xeon_oltp(2);
        let hot = h.expected_latency(AccessClass::Hot).as_ns();
        let chase = h.expected_latency(AccessClass::PointerChase).as_ns();
        assert!(chase > 20.0 * hot, "hot={hot} chase={chase}");
    }

    #[test]
    fn hit_counters_track_accesses() {
        let mut h = CacheHierarchy::xeon_oltp(3);
        h.access_many(AccessClass::Index, 1000);
        let counts = h.hit_counts(AccessClass::Index);
        assert_eq!(counts.iter().sum::<u64>(), 1000);
        // Index class: some DRAM misses should occur (p=0.2).
        assert!(counts[3] > 100 && counts[3] < 320, "{counts:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = CacheHierarchy::xeon_oltp(42);
        let mut b = CacheHierarchy::xeon_oltp(42);
        let (ta, _) = a.access_many(AccessClass::PointerChase, 1000);
        let (tb, _) = b.access_many(AccessClass::PointerChase, 1000);
        assert_eq!(ta, tb);
    }

    #[test]
    #[should_panic(expected = "hit probabilities exceed 1")]
    fn invalid_probabilities_rejected() {
        let mut cfg = CacheHierarchyConfig::xeon_oltp();
        cfg.hit_prob[0] = [0.9, 0.2, 0.2];
        CacheHierarchy::new(cfg, 0);
    }

    #[test]
    fn sgdram_flat_latency_when_idle() {
        let mut m = SgDram::hc2();
        let (done, _) = m.access(SimTime::ZERO);
        assert_eq!(done.as_ns(), 400.0);
    }

    #[test]
    fn sgdram_sustains_configured_bandwidth() {
        // 10_000 random 8B accesses back to back: bandwidth-limited at
        // 80 GB/s -> 0.1 ns apart -> last completes ~400ns + 1us.
        let mut m = SgDram::hc2();
        let mut done = SimTime::ZERO;
        let n = 10_000u64;
        for _ in 0..n {
            let (d, _) = m.access(SimTime::ZERO);
            done = d;
        }
        let achieved = (n * 8) as f64 / done.as_secs();
        assert!(achieved > 0.5 * 80e9, "achieved={achieved:.3e}");
        assert_eq!(m.accesses(), n);
    }

    #[test]
    fn sgdram_pointer_chase_needs_concurrency_not_locality() {
        // A dependent chain (each access issued after the previous returns)
        // runs at 1/400ns; twelve independent chains interleaved run ~12x
        // faster — the §5.3 "dozen outstanding requests" claim.
        let chain_len = 100u64;

        let mut serial = SgDram::hc2();
        let mut t = SimTime::ZERO;
        for _ in 0..chain_len {
            let (d, _) = serial.access(t);
            t = d;
        }
        let serial_done = t;

        let mut pipelined = SgDram::hc2();
        let chains = 12usize;
        let mut ts = vec![SimTime::ZERO; chains];
        for _ in 0..chain_len {
            for t in ts.iter_mut() {
                let (d, _) = pipelined.access(*t);
                *t = d;
            }
        }
        let parallel_done = ts.iter().copied().max().unwrap();

        let serial_rate = chain_len as f64 / serial_done.as_secs();
        let parallel_rate = (chain_len as f64 * chains as f64) / parallel_done.as_secs();
        let speedup = parallel_rate / serial_rate;
        assert!(
            speedup > 10.0 && speedup < 13.0,
            "speedup={speedup} (expected ~12)"
        );
    }
}
