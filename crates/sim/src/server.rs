//! Queueing-theoretic building blocks: FIFO servers and pipelined units.
//!
//! These are *analytic* resources: instead of scheduling internal events,
//! each keeps just enough state (when it next frees up) to answer "if a
//! request arrives at time t, when does it start and finish?" — which is all
//! the engine needs, and keeps the event loop small.

use crate::time::SimTime;

/// A single FIFO server: one request in service at a time.
///
/// Models serialization points — a latch, a log-buffer arbiter, a disk arm.
#[derive(Debug, Clone, Default)]
pub struct Server {
    free_at: SimTime,
    busy_total: SimTime,
    served: u64,
}

impl Server {
    /// An idle server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Submit a request arriving at `arrive` needing `service` time.
    /// Returns `(start, completion)`.
    pub fn submit(&mut self, arrive: SimTime, service: SimTime) -> (SimTime, SimTime) {
        let start = arrive.max(self.free_at);
        let done = start + service;
        self.free_at = done;
        self.busy_total += service;
        self.served += 1;
        (start, done)
    }

    /// When the server next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total time spent serving requests.
    pub fn busy_time(&self) -> SimTime {
        self.busy_total
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Utilization over the interval `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon.is_zero() {
            0.0
        } else {
            (self.busy_total.as_ps() as f64 / horizon.as_ps() as f64).min(1.0)
        }
    }
}

/// A contended resource modeled by *windowed utilization* instead of a FIFO
/// timeline — for callers that submit work in functional order rather than
/// time order.
///
/// A [`Server`] fed out-of-order arrivals converts submission jitter into
/// phantom backlog: one far-future submission ratchets `free_at`, and every
/// earlier-timestamped request then queues behind it. `FluidQueue` instead
/// integrates offered service time over a sliding window and returns an
/// M/D/c-style queueing delay `service/c × ρ/(2(1−ρ))` on each submission.
/// It is deterministic, stable under out-of-order arrival, and saturates
/// smoothly (ρ is clamped so delays stay finite under overload).
///
/// ```
/// use bionic_sim::server::FluidQueue;
/// use bionic_sim::time::SimTime;
///
/// let mut latch = FluidQueue::latch();
/// // An idle latch adds (almost) no delay...
/// let d = latch.delay(SimTime::from_us(10.0), SimTime::from_ns(70.0));
/// assert!(d.as_ns() < 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct FluidQueue {
    servers: u64,
    window: SimTime,
    window_start: SimTime,
    busy: SimTime,
    total_busy: SimTime,
    submissions: u64,
}

/// Utilization clamp for [`FluidQueue`].
const RHO_MAX: f64 = 0.97;

impl FluidQueue {
    /// A fluid queue with `servers` parallel servers and the given
    /// utilization-measurement window.
    pub fn new(servers: usize, window: SimTime) -> Self {
        assert!(servers >= 1);
        FluidQueue {
            servers: servers as u64,
            window,
            window_start: SimTime::ZERO,
            busy: SimTime::ZERO,
            total_busy: SimTime::ZERO,
            submissions: 0,
        }
    }

    /// A single-server fluid queue with a 1 ms window (latch modeling).
    pub fn latch() -> Self {
        Self::new(1, SimTime::from_ms(1.0))
    }

    /// Submit `service` of work arriving at `arrive`; returns the modeled
    /// queueing delay (service time not included).
    pub fn delay(&mut self, arrive: SimTime, service: SimTime) -> SimTime {
        if arrive > self.window_start + self.window {
            self.window_start = arrive;
            self.busy = SimTime::ZERO;
        }
        self.total_busy += service;
        self.submissions += 1;
        // Utilization from work offered by OTHERS in the window: a lone
        // request on an idle resource must see no queueing.
        let span = arrive
            .saturating_sub(self.window_start)
            .max(service)
            .as_secs();
        let rho = (self.busy.as_secs() / (span * self.servers as f64)).min(RHO_MAX);
        self.busy += service;
        (service / self.servers) * (rho / (2.0 * (1.0 - rho)))
    }

    /// Current-window utilization estimate as of `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let span = now.saturating_sub(self.window_start);
        if span.is_zero() {
            0.0
        } else {
            (self.busy.as_secs() / (span.as_secs() * self.servers as f64)).min(1.0)
        }
    }

    /// Total service time ever offered.
    pub fn total_busy(&self) -> SimTime {
        self.total_busy
    }

    /// Number of submissions.
    pub fn submissions(&self) -> u64 {
        self.submissions
    }
}

/// A pipelined unit with bounded concurrency.
///
/// Each request occupies the unit for `latency`, new requests may be issued
/// every `initiation_interval`, and at most `depth` requests are in flight.
/// With `depth ≥ latency / initiation_interval` the unit streams at full
/// rate — this is exactly the Little's-law argument of §5.3: a tree-probe
/// engine against 400 ns SG-DRAM saturates with "only perhaps a dozen
/// outstanding requests".
#[derive(Debug, Clone)]
pub struct PipelinedUnit {
    latency: SimTime,
    initiation_interval: SimTime,
    depth: usize,
    /// Completion times of the most recent `depth` requests (ring buffer).
    inflight: Vec<SimTime>,
    head: usize,
    last_issue: SimTime,
    issued: u64,
}

impl PipelinedUnit {
    /// Create a unit. `depth` must be at least 1.
    pub fn new(latency: SimTime, initiation_interval: SimTime, depth: usize) -> Self {
        assert!(depth >= 1, "pipeline depth must be >= 1");
        PipelinedUnit {
            latency,
            initiation_interval,
            depth,
            inflight: vec![SimTime::ZERO; depth],
            head: 0,
            last_issue: SimTime::ZERO,
            issued: 0,
        }
    }

    /// Per-request latency.
    pub fn latency(&self) -> SimTime {
        self.latency
    }

    /// Maximum in-flight requests.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Submit a request arriving at `arrive`; returns its completion time.
    pub fn submit(&mut self, arrive: SimTime) -> SimTime {
        // The slot at `head` holds the completion time of the request issued
        // `depth` requests ago: we cannot issue until it has drained.
        let slot_free = self.inflight[self.head];
        let mut issue = arrive.max(slot_free);
        if self.issued > 0 {
            issue = issue.max(self.last_issue + self.initiation_interval);
        }
        let done = issue + self.latency;
        self.inflight[self.head] = done;
        self.head = (self.head + 1) % self.depth;
        self.last_issue = issue;
        self.issued += 1;
        done
    }

    /// Requests issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Steady-state throughput limit in requests per second.
    pub fn peak_rate_per_sec(&self) -> f64 {
        let per_req = self
            .initiation_interval
            .max(SimTime::from_ps(self.latency.as_ps() / self.depth as u64));
        if per_req.is_zero() {
            f64::INFINITY
        } else {
            1.0 / per_req.as_secs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_idle_starts_immediately() {
        let mut s = Server::new();
        let (start, done) = s.submit(SimTime::from_ns(10.0), SimTime::from_ns(5.0));
        assert_eq!(start.as_ns(), 10.0);
        assert_eq!(done.as_ns(), 15.0);
    }

    #[test]
    fn server_queues_back_to_back() {
        let mut s = Server::new();
        s.submit(SimTime::ZERO, SimTime::from_ns(10.0));
        // Arrives while busy: waits until 10ns.
        let (start, done) = s.submit(SimTime::from_ns(2.0), SimTime::from_ns(10.0));
        assert_eq!(start.as_ns(), 10.0);
        assert_eq!(done.as_ns(), 20.0);
        assert_eq!(s.served(), 2);
        assert_eq!(s.busy_time().as_ns(), 20.0);
        assert!((s.utilization(SimTime::from_ns(40.0)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fluid_queue_idle_has_negligible_delay() {
        let mut q = FluidQueue::latch();
        // Sparse arrivals: utilization ~0, delay ~0.
        let mut at = SimTime::ZERO;
        for _ in 0..100 {
            let d = q.delay(at, SimTime::from_ns(70.0));
            assert!(d.as_ns() < 10.0, "idle delay={d}");
            at += SimTime::from_us(10.0);
        }
    }

    #[test]
    fn fluid_queue_delay_grows_with_load() {
        let service = SimTime::from_ns(70.0);
        let measure = |inter_ns: f64| {
            let mut q = FluidQueue::latch();
            let mut at = SimTime::ZERO;
            let mut total = SimTime::ZERO;
            for _ in 0..10_000 {
                total += q.delay(at, service);
                at += SimTime::from_ns(inter_ns);
            }
            total.as_ns() / 10_000.0
        };
        let light = measure(700.0); // 10% load
        let heavy = measure(80.0); // ~88% load
        let overload = measure(35.0); // 2x overload, clamped
        assert!(light < 10.0, "light={light}");
        assert!(heavy > 5.0 * light.max(1.0), "heavy={heavy} light={light}");
        assert!(overload > heavy, "overload={overload}");
        // Clamp keeps overload finite: delay <= service * 0.97/(2*0.03).
        assert!(overload < 70.0 * 17.0);
    }

    #[test]
    fn fluid_queue_tolerates_out_of_order_arrivals() {
        let mut q = FluidQueue::latch();
        let service = SimTime::from_ns(70.0);
        // A far-future submission must not penalize earlier ones.
        q.delay(SimTime::from_ms(0.9), service);
        let d = q.delay(SimTime::from_us(1.0), service);
        assert!(d.as_ns() < 100.0, "d={d}");
    }

    #[test]
    fn fluid_queue_multi_server_scales() {
        let service = SimTime::from_us(1.0);
        let run = |servers: usize| {
            let mut q = FluidQueue::new(servers, SimTime::from_ms(1.0));
            let mut at = SimTime::ZERO;
            let mut total = SimTime::ZERO;
            for _ in 0..5_000 {
                total += q.delay(at, service);
                at += SimTime::from_ns(1_300.0); // ~77% of 1 server
            }
            total.as_us() / 5_000.0
        };
        assert!(run(4) < run(1) / 3.0);
    }

    #[test]
    fn pipeline_depth_one_is_a_serial_server() {
        let lat = SimTime::from_ns(400.0);
        let mut u = PipelinedUnit::new(lat, SimTime::from_ns(1.0), 1);
        let d1 = u.submit(SimTime::ZERO);
        let d2 = u.submit(SimTime::ZERO);
        assert_eq!(d1.as_ns(), 400.0);
        assert_eq!(d2.as_ns(), 800.0);
    }

    #[test]
    fn deep_pipeline_overlaps_latency() {
        // 400ns latency, 5ns initiation, depth 80 (= latency/ii, enough to
        // stream): 100 back-to-back requests take 400 + 99*5 ns, not 100*400.
        let mut u = PipelinedUnit::new(SimTime::from_ns(400.0), SimTime::from_ns(5.0), 80);
        let mut last = SimTime::ZERO;
        for _ in 0..100 {
            last = u.submit(SimTime::ZERO);
        }
        assert_eq!(last.as_ns(), 400.0 + 99.0 * 5.0);
    }

    #[test]
    fn littles_law_saturation_point() {
        // Little's law: to stream at 1/ii with latency L you need depth
        // >= L/ii. With 400ns latency and 40ns initiation, depth 10 streams,
        // depth 5 halves throughput.
        let lat = SimTime::from_ns(400.0);
        let ii = SimTime::from_ns(40.0);
        let n = 1000u64;

        let mut full = PipelinedUnit::new(lat, ii, 10);
        let mut done_full = SimTime::ZERO;
        for _ in 0..n {
            done_full = full.submit(SimTime::ZERO);
        }

        let mut shallow = PipelinedUnit::new(lat, ii, 5);
        let mut done_shallow = SimTime::ZERO;
        for _ in 0..n {
            done_shallow = shallow.submit(SimTime::ZERO);
        }

        let rate_full = n as f64 / done_full.as_secs();
        let rate_shallow = n as f64 / done_shallow.as_secs();
        assert!(
            (rate_full / rate_shallow - 2.0).abs() < 0.05,
            "full={rate_full} shallow={rate_shallow}"
        );
    }

    #[test]
    fn pipeline_respects_arrival_times() {
        let mut u = PipelinedUnit::new(SimTime::from_ns(100.0), SimTime::from_ns(1.0), 8);
        let done = u.submit(SimTime::from_us(1.0));
        assert_eq!(done.as_ns(), 1000.0 + 100.0);
    }

    #[test]
    fn peak_rate_accounts_for_depth_limit() {
        // latency 400ns, ii 1ns, depth 4 -> drain-limited to 1 per 100ns.
        let u = PipelinedUnit::new(SimTime::from_ns(400.0), SimTime::from_ns(1.0), 4);
        assert!((u.peak_rate_per_sec() - 1e9 / 100.0).abs() / (1e9 / 100.0) < 0.01);
    }
}
