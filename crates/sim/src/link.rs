//! Bandwidth/latency links: the PCIe bus and other point-to-point paths.
//!
//! Figure 2 labels every path with `bandwidth / latency`; a [`Link`] models
//! exactly that pair, serializing transfers FIFO at the bandwidth limit and
//! adding the propagation latency on top. The paper's key number is the PCIe
//! path: 4 GB/s but a 2 µs round trip — "severe NUMA effects" that force all
//! CPU↔FPGA communication to be asynchronous (§5).

use crate::energy::Energy;
use crate::time::SimTime;

/// A FIFO, bandwidth-limited, fixed-latency link.
#[derive(Debug, Clone)]
pub struct Link {
    bytes_per_sec: f64,
    latency: SimTime,
    energy_per_byte: Energy,
    free_at: SimTime,
    bytes_moved: u64,
    transfers: u64,
    busy: SimTime,
}

impl Link {
    /// Create a link with the given bandwidth (bytes/second), one-way
    /// propagation latency, and transfer energy per byte.
    pub fn new(bytes_per_sec: f64, latency: SimTime, energy_per_byte: Energy) -> Self {
        assert!(bytes_per_sec > 0.0);
        Link {
            bytes_per_sec,
            latency,
            energy_per_byte,
            free_at: SimTime::ZERO,
            bytes_moved: 0,
            transfers: 0,
            busy: SimTime::ZERO,
        }
    }

    /// One-way propagation latency.
    pub fn latency(&self) -> SimTime {
        self.latency
    }

    /// Round-trip latency (2× one-way).
    pub fn round_trip(&self) -> SimTime {
        self.latency * 2u64
    }

    /// Time the wire takes to clock out `bytes` (no queueing, no latency).
    pub fn wire_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs(bytes as f64 / self.bytes_per_sec)
    }

    /// Small-message transfer that does not queue on the shared wire: the
    /// link is full-duplex and control messages (doorbells, probe requests,
    /// responses) are far below its bandwidth, so they see only wire time
    /// plus propagation. Bytes are still counted for utilization reports.
    ///
    /// Use [`Link::transfer`] for bulk traffic where FIFO bandwidth
    /// contention is the effect under study (e.g. shipping scan columns).
    pub fn transfer_unqueued(&mut self, arrive: SimTime, bytes: u64) -> (SimTime, Energy) {
        self.bytes_moved += bytes;
        self.transfers += 1;
        let wire = self.wire_time(bytes);
        self.busy += wire;
        (arrive + wire + self.latency, self.energy_per_byte * bytes)
    }

    /// Transfer `bytes` starting no earlier than `arrive`; returns the time
    /// the last byte arrives at the far end, and the energy spent.
    pub fn transfer(&mut self, arrive: SimTime, bytes: u64) -> (SimTime, Energy) {
        let start = arrive.max(self.free_at);
        let busy = self.wire_time(bytes);
        self.free_at = start + busy;
        self.bytes_moved += bytes;
        self.transfers += 1;
        self.busy += busy;
        (start + busy + self.latency, self.energy_per_byte * bytes)
    }

    /// A request/response exchange: `req_bytes` over, remote handling of
    /// `service`, `resp_bytes` back. Returns completion time and energy.
    ///
    /// This is the shape of every software→FPGA offload call in §5.
    pub fn round_trip_exchange(
        &mut self,
        arrive: SimTime,
        req_bytes: u64,
        service: SimTime,
        resp_bytes: u64,
    ) -> (SimTime, Energy) {
        let (req_done, e1) = self.transfer(arrive, req_bytes);
        let remote_done = req_done + service;
        let (resp_done, e2) = self.transfer(remote_done, resp_bytes);
        (resp_done, e1 + e2)
    }

    /// Total payload bytes moved so far.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Number of transfers so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Accumulated wire-busy time: the sum of clock-out times of every
    /// transfer (queued or not), excluding propagation latency. Divide by a
    /// horizon for wire utilization.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Achieved bandwidth over `[0, horizon]` in bytes/second.
    pub fn achieved_bw(&self, horizon: SimTime) -> f64 {
        if horizon.is_zero() {
            0.0
        } else {
            self.bytes_moved as f64 / horizon.as_secs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pcie() -> Link {
        // Figure 2: 8x PCI-e, 4 GB/s, 2 us round trip (1 us each way).
        Link::new(4e9, SimTime::from_us(1.0), Energy::from_pj(10.0))
    }

    #[test]
    fn single_transfer_time_is_wire_plus_latency() {
        let mut l = pcie();
        // 4000 bytes at 4 GB/s = 1 us wire time, + 1 us latency = 2 us.
        let (done, _) = l.transfer(SimTime::ZERO, 4000);
        assert!((done.as_us() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn transfers_serialize_on_the_wire_but_latency_overlaps() {
        let mut l = pcie();
        let (d1, _) = l.transfer(SimTime::ZERO, 4000);
        let (d2, _) = l.transfer(SimTime::ZERO, 4000);
        // Second transfer starts clocking at 1us, done at 2us, arrives 3us.
        assert!((d1.as_us() - 2.0).abs() < 1e-9);
        assert!((d2.as_us() - 3.0).abs() < 1e-9);
        assert_eq!(l.bytes_moved(), 8000);
        assert_eq!(l.transfers(), 2);
        // Two 1us clock-outs of wire-busy, latency excluded.
        assert!((l.busy_time().as_us() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn round_trip_exchange_includes_both_directions() {
        let mut l = pcie();
        // 64B request and response: wire time negligible (16 ns each), so the
        // exchange is dominated by 2 us of propagation — the paper's "2 us
        // round trip" NUMA effect.
        let (done, _) = l.round_trip_exchange(SimTime::ZERO, 64, SimTime::ZERO, 64);
        assert!((done.as_us() - 2.0).abs() < 0.05, "done={}", done);
    }

    #[test]
    fn achieved_bandwidth_saturates_at_configured() {
        let mut l = pcie();
        let mut done = SimTime::ZERO;
        for _ in 0..1000 {
            let (d, _) = l.transfer(SimTime::ZERO, 1 << 20);
            done = d;
        }
        let bw = l.achieved_bw(done);
        assert!(bw <= 4e9 * 1.001, "bw={bw}");
        assert!(bw >= 4e9 * 0.99, "bw={bw}");
    }

    #[test]
    fn energy_scales_with_bytes() {
        let mut l = pcie();
        let (_, e) = l.transfer(SimTime::ZERO, 1000);
        assert!((e.as_nj() - 10.0).abs() < 1e-9);
    }
}
