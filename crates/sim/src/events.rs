//! The discrete-event core: a time-ordered event queue.
//!
//! A consumer defines its own event payload enum and drives a pop-dispatch
//! loop; this module guarantees deterministic ordering: events fire in
//! (time, insertion-sequence) order, so simultaneous events are processed
//! FIFO and runs are exactly repeatable.
//!
//! The shipped engine prices work through *analytic* resource models
//! ([`crate::server`], [`crate::mem`]) rather than a global event loop —
//! see DESIGN.md's timing-model notes — so `EventQueue` is provided as the
//! toolkit piece for downstream simulations that do want explicit
//! event-driven interleaving (e.g. modeling preemption or finer-grained
//! hardware handshakes).

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct Key(SimTime, u64);

struct Entry<E> {
    key: Key,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A deterministic discrete-event queue.
///
/// ```
/// use bionic_sim::events::EventQueue;
/// use bionic_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(20.0), "late");
/// q.push(SimTime::from_ns(10.0), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!(e, "early");
/// assert_eq!(t.as_ns(), 10.0);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a simulation bug; debug builds panic.
    pub fn push(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: {} < {}",
            at,
            self.now
        );
        let key = Key(at, self.seq);
        self.seq += 1;
        self.heap.push(Reverse(Entry { key, event }));
    }

    /// Schedule `event` to fire `delay` after the current time.
    pub fn push_after(&mut self, delay: SimTime, event: E) {
        self.push(self.now + delay, event);
    }

    /// Remove and return the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| {
            self.now = e.key.0;
            (e.key.0, e.event)
        })
    }

    /// Time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.key.0)
    }

    /// The current simulated time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(30.0), 3);
        q.push(SimTime::from_ns(10.0), 1);
        q.push(SimTime::from_ns(20.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5.0);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(7.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(7.0)));
        q.pop();
        assert_eq!(q.now().as_ns(), 7.0);
        assert!(q.is_empty());
    }

    #[test]
    fn push_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10.0), "a");
        q.pop();
        q.push_after(SimTime::from_ns(5.0), "b");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.as_ns(), 15.0);
    }

    #[test]
    #[should_panic(expected = "scheduled event in the past")]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10.0), ());
        q.pop();
        q.push(SimTime::from_ns(5.0), ());
    }
}
