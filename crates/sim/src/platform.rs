//! The assembled platform of Figure 2.
//!
//! [`Platform`] bundles every modeled path (host CPU and caches, FPGA
//! fabric with SG-DRAM, the PCIe bridge, and both storage devices) behind
//! one value the engine threads through its event loop. `Platform::hc2()`
//! is the Convey HC-2-class preset whose numbers come off the figure:
//!
//! ```text
//!   CPU  ── DDR3 DRAM   20 GB/s / 400 ns   (modeled via cache hierarchy)
//!    │
//!   PCIe  8x            4 GB/s  / 2 µs round trip
//!    │
//!   FPGA ── SG-DRAM     80 GB/s / 400 ns   (random 64-bit requests)
//!    ├── 2× SAS         12 Gb/s / 5 ms     (database files)
//!   CPU ─── SSD         500 MB/s / 20 µs   (log files)
//! ```

use crate::arbiter::{BwClient, SharedBandwidth};
use crate::cpu::CpuModel;
use crate::dev::BlockDevice;
use crate::energy::{Energy, EnergyDomain, EnergyMeter};
use crate::fpga::FpgaFabric;
use crate::link::Link;
use crate::mem::{AccessClass, CacheHierarchy, SgDram};
use crate::time::SimTime;

/// Static platform parameters that don't fit a single component.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// CPU sockets on the host (log-scalability experiments sweep this).
    pub sockets: usize,
    /// Cores per socket.
    pub cores_per_socket: usize,
    /// One-way latency of a cache line crossing sockets — the cost that
    /// makes multi-socket logging "an open challenge" \[7\].
    pub socket_hop: SimTime,
    /// Seed for the deterministic memory models.
    pub seed: u64,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            sockets: 2,
            cores_per_socket: 8,
            socket_hop: SimTime::from_ns(120.0),
            seed: 0xB10_01C,
        }
    }
}

/// The full modeled machine.
#[derive(Debug, Clone)]
pub struct Platform {
    /// Static parameters.
    pub cfg: PlatformConfig,
    /// Host core cost model.
    pub cpu: CpuModel,
    /// Host cache hierarchy.
    pub cpu_mem: CacheHierarchy,
    /// FPGA-side scatter-gather memory.
    pub sg_dram: SgDram,
    /// Host↔FPGA bridge.
    pub pcie: Link,
    /// SAS array holding database files (FPGA side).
    pub sas: BlockDevice,
    /// Host SSD holding log files.
    pub ssd: BlockDevice,
    /// Reconfigurable fabric (area budget + clock).
    pub fabric: FpgaFabric,
    /// Energy accounting for every domain.
    pub energy: EnergyMeter,
    /// Opt-in shared-bandwidth arbitration between the transaction engine
    /// and concurrent analytics. `None` (the default) preserves the
    /// independent per-caller pricing every single-workload experiment
    /// uses; the hybrid driver enables it so both sides observe each
    /// other's queueing delay on SG-DRAM and the PCIe bridge.
    pub contention: Option<Contention>,
}

/// The contended shared paths of the hybrid engine: one arbiter for
/// SG-DRAM, one for the CPU↔FPGA link, both keyed by [`BwClient`].
#[derive(Debug, Clone)]
pub struct Contention {
    /// SG-DRAM bandwidth arbiter (80 GB/s on the HC-2 preset).
    pub sg: SharedBandwidth,
    /// PCIe bridge bandwidth arbiter (4 GB/s on the HC-2 preset).
    pub link: SharedBandwidth,
}

impl Contention {
    /// Arbitration window for both paths: long enough that a window holds
    /// meaningful traffic (400 KB of SG-DRAM, 20 KB of PCIe), short enough
    /// that cross-client delay stays below transaction latencies.
    pub const WINDOW: SimTime = SimTime::from_ps(5_000_000); // 5 us

    /// Equal-weight OLTP/OLAP arbitration over the HC-2 paths.
    pub fn hc2() -> Self {
        Contention {
            sg: SharedBandwidth::two_client(80e9, Self::WINDOW),
            link: SharedBandwidth::two_client(4e9, Self::WINDOW),
        }
    }
}

impl Platform {
    /// The Convey HC-2-class platform of Figure 2, with default config.
    pub fn hc2() -> Self {
        Self::hc2_with(PlatformConfig::default())
    }

    /// The HC-2 preset with explicit config (socket counts, seed).
    pub fn hc2_with(cfg: PlatformConfig) -> Self {
        let seed = cfg.seed;
        Platform {
            cfg,
            cpu: CpuModel::xeon_oltp(),
            cpu_mem: CacheHierarchy::xeon_oltp(seed),
            sg_dram: SgDram::hc2(),
            pcie: Link::new(4e9, SimTime::from_us(1.0), Energy::from_pj(10.0)),
            sas: BlockDevice::sas_array(),
            ssd: BlockDevice::ssd(),
            fabric: FpgaFabric::hc2(),
            energy: EnergyMeter::new(),
            contention: None,
        }
    }

    /// Turn on shared-bandwidth arbitration (equal OLTP/OLAP weights).
    /// Idempotent: an already-enabled platform keeps its ledgers.
    pub fn enable_contention(&mut self) {
        if self.contention.is_none() {
            self.contention = Some(Contention::hc2());
        }
    }

    /// Arbitration delay for `bytes` of SG-DRAM traffic by `client`
    /// arriving at `arrive`. Zero when contention is disabled — every
    /// pre-hybrid call site prices exactly as before.
    pub fn sg_contention_delay(
        &mut self,
        client: BwClient,
        arrive: SimTime,
        bytes: u64,
    ) -> SimTime {
        match &mut self.contention {
            Some(c) => c.sg.request(client.index(), arrive, bytes).queued,
            None => SimTime::ZERO,
        }
    }

    /// Arbitration delay for `bytes` crossing the CPU↔FPGA link by
    /// `client` at `arrive`. Zero when contention is disabled.
    pub fn link_contention_delay(
        &mut self,
        client: BwClient,
        arrive: SimTime,
        bytes: u64,
    ) -> SimTime {
        match &mut self.contention {
            Some(c) => c.link.request(client.index(), arrive, bytes).queued,
            None => SimTime::ZERO,
        }
    }

    /// Charge CPU compute: `instructions` of straight-line work. Returns the
    /// time taken; energy goes to the meter.
    pub fn cpu_compute(&mut self, instructions: u64) -> SimTime {
        let (t, e) = self.cpu.compute(instructions);
        self.energy.charge(EnergyDomain::CpuCore, e);
        t
    }

    /// Charge `n` host memory accesses of a class. Returns total stall time;
    /// energy goes to the meter (split cache vs DRAM is folded into Cache/
    /// Dram domains by level).
    pub fn cpu_mem_access(&mut self, class: AccessClass, n: u64) -> SimTime {
        let mut total = SimTime::ZERO;
        for _ in 0..n {
            let o = self.cpu_mem.access(class);
            total += o.latency;
            let domain = match o.level {
                crate::mem::MemLevel::Dram => EnergyDomain::Dram,
                _ => EnergyDomain::Cache,
            };
            self.energy.charge(domain, o.energy);
        }
        total
    }

    /// A convenience bundle: straight-line software step of `instructions`
    /// instructions and `mem_accesses` accesses of `class`. Returns elapsed
    /// core time (compute + stalls).
    pub fn sw_step(&mut self, instructions: u64, mem_accesses: u64, class: AccessClass) -> SimTime {
        self.cpu_compute(instructions) + self.cpu_mem_access(class, mem_accesses)
    }

    /// One SG-DRAM access arriving at `arrive`; completion time returned,
    /// energy metered.
    pub fn sg_access(&mut self, arrive: SimTime) -> SimTime {
        let (done, e) = self.sg_dram.access(arrive);
        self.energy.charge(EnergyDomain::SgDram, e);
        done
    }

    /// Bulk transfer over PCIe (FIFO bandwidth contention); completion
    /// returned, energy metered.
    pub fn pcie_transfer(&mut self, arrive: SimTime, bytes: u64) -> SimTime {
        let (done, e) = self.pcie.transfer(arrive, bytes);
        self.energy.charge(EnergyDomain::Pcie, e);
        done
    }

    /// Small control message over PCIe (latency-only, full-duplex);
    /// completion returned, energy metered.
    pub fn pcie_send(&mut self, arrive: SimTime, bytes: u64) -> SimTime {
        let (done, e) = self.pcie.transfer_unqueued(arrive, bytes);
        self.energy.charge(EnergyDomain::Pcie, e);
        done
    }

    /// A request/response offload call over PCIe (§5's universal shape).
    pub fn pcie_exchange(
        &mut self,
        arrive: SimTime,
        req_bytes: u64,
        remote_service: SimTime,
        resp_bytes: u64,
    ) -> SimTime {
        let (done, e) =
            self.pcie
                .round_trip_exchange(arrive, req_bytes, remote_service, resp_bytes);
        self.energy.charge(EnergyDomain::Pcie, e);
        done
    }

    /// Read from the SAS array (database files).
    pub fn sas_read(&mut self, arrive: SimTime, offset: u64, bytes: u64) -> SimTime {
        let (done, e) = self.sas.read(arrive, offset, bytes);
        self.energy.charge(EnergyDomain::Storage, e);
        done
    }

    /// Write to the SAS array (database files).
    pub fn sas_write(&mut self, arrive: SimTime, offset: u64, bytes: u64) -> SimTime {
        let (done, e) = self.sas.write(arrive, offset, bytes);
        self.energy.charge(EnergyDomain::Storage, e);
        done
    }

    /// Write to the host SSD (log files); returns durable time.
    pub fn ssd_write(&mut self, arrive: SimTime, offset: u64, bytes: u64) -> SimTime {
        let (done, e) = self.ssd.write(arrive, offset, bytes);
        self.energy.charge(EnergyDomain::Storage, e);
        done
    }

    /// Read from the host SSD.
    pub fn ssd_read(&mut self, arrive: SimTime, offset: u64, bytes: u64) -> SimTime {
        let (done, e) = self.ssd.read(arrive, offset, bytes);
        self.energy.charge(EnergyDomain::Storage, e);
        done
    }

    /// Charge energy to an FPGA unit's operations (units live in domain
    /// crates; they report energy here).
    pub fn charge_fpga(&mut self, e: Energy) {
        self.energy.charge(EnergyDomain::Fpga, e);
    }

    /// Total host cores.
    pub fn total_cores(&self) -> usize {
        self.cfg.sockets * self.cfg.cores_per_socket
    }

    /// Snapshot of the platform's activity counters, in a plain struct so
    /// observability layers above `bionic-sim` can export them without
    /// reaching into each component.
    pub fn counters(&self) -> PlatformCounters {
        PlatformCounters {
            pcie_bytes: self.pcie.bytes_moved(),
            pcie_transfers: self.pcie.transfers(),
            pcie_busy: self.pcie.busy_time(),
            sg_dram_accesses: self.sg_dram.accesses(),
            cpu_mem_accesses: AccessClass::ALL
                .map(|c| self.cpu_mem.hit_counts(c).iter().sum::<u64>()),
            fabric_used_slices: self.fabric.total_slices() - self.fabric.free_slices(),
            fabric_total_slices: self.fabric.total_slices(),
        }
    }
}

/// Activity counters of every modeled path, as captured by
/// [`Platform::counters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlatformCounters {
    /// Payload bytes moved over PCIe.
    pub pcie_bytes: u64,
    /// PCIe transfers (bulk + control).
    pub pcie_transfers: u64,
    /// Accumulated PCIe wire-busy time (clock-out only, no propagation).
    pub pcie_busy: SimTime,
    /// SG-DRAM requests served.
    pub sg_dram_accesses: u64,
    /// Host cache-hierarchy accesses, per [`AccessClass::ALL`] order.
    pub cpu_mem_accesses: [u64; 4],
    /// Fabric slices consumed by placed units.
    pub fabric_used_slices: u64,
    /// Fabric slice budget.
    pub fabric_total_slices: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hc2_preset_matches_figure2_numbers() {
        let p = Platform::hc2();
        assert_eq!(p.pcie.round_trip().as_us(), 2.0);
        assert_eq!(p.sg_dram.latency().as_ns(), 400.0);
        assert_eq!(p.sas.seek_time().as_ms(), 5.0);
        assert_eq!(p.ssd.seek_time().as_us(), 20.0);
        assert_eq!(p.fabric.clock_period().as_ns(), 5.0);
        assert_eq!(p.total_cores(), 16);
    }

    #[test]
    fn sw_step_charges_compute_and_stalls() {
        let mut p = Platform::hc2();
        let t = p.sw_step(100, 10, AccessClass::PointerChase);
        // 100 instructions = 40ns; 10 pointer chases >= 10 * min latency.
        assert!(t.as_ns() > 40.0);
        assert!(p.energy.domain(EnergyDomain::CpuCore).as_nj() > 99.0);
        assert!(p.energy.total() > Energy::ZERO);
    }

    #[test]
    fn offload_exchange_pays_two_microseconds() {
        let mut p = Platform::hc2();
        let done = p.pcie_exchange(SimTime::ZERO, 64, SimTime::from_ns(100.0), 64);
        assert!(done.as_us() > 2.0 && done.as_us() < 2.3, "done={done}");
        assert!(p.energy.domain(EnergyDomain::Pcie) > Energy::ZERO);
    }

    #[test]
    fn energy_domains_are_separated() {
        let mut p = Platform::hc2();
        p.sg_access(SimTime::ZERO);
        p.ssd_write(SimTime::ZERO, 0, 4096);
        p.charge_fpga(Energy::from_nj(1.0));
        assert!(p.energy.domain(EnergyDomain::SgDram) > Energy::ZERO);
        assert!(p.energy.domain(EnergyDomain::Storage) > Energy::ZERO);
        assert!(p.energy.domain(EnergyDomain::Fpga) > Energy::ZERO);
        assert_eq!(p.energy.domain(EnergyDomain::CpuCore), Energy::ZERO);
    }

    #[test]
    fn counters_snapshot_tracks_activity() {
        let mut p = Platform::hc2();
        assert_eq!(p.counters().pcie_transfers, 0);
        p.pcie_send(SimTime::ZERO, 64);
        p.sg_access(SimTime::ZERO);
        p.cpu_mem_access(AccessClass::Index, 3);
        let c = p.counters();
        assert_eq!(c.pcie_transfers, 1);
        assert_eq!(c.pcie_bytes, 64);
        assert_eq!(c.sg_dram_accesses, 1);
        assert_eq!(c.cpu_mem_accesses[1], 3, "Index is ALL[1]");
        assert_eq!(c.fabric_total_slices, 150_000);
    }

    #[test]
    fn clone_gives_independent_worlds() {
        let mut a = Platform::hc2();
        let mut b = a.clone();
        a.cpu_compute(1_000);
        assert_eq!(b.energy.total(), Energy::ZERO);
        // Deterministic: same ops on clones give same results.
        let ta = a.cpu_mem_access(AccessClass::Index, 100);
        b.cpu_compute(1_000);
        let tb = b.cpu_mem_access(AccessClass::Index, 100);
        assert_eq!(ta, tb);
    }
}
