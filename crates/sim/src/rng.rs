//! A tiny deterministic PRNG for model-internal randomness.
//!
//! The memory models need cheap, reproducible coin flips (cache hit or miss?)
//! that must not perturb the workload generators' `rand` streams. SplitMix64
//! is two arithmetic operations per draw, passes BigCrush, and — crucially for
//! a simulator — makes every run bit-for-bit repeatable from a seed.

/// SplitMix64 PRNG (Steele, Lea & Flood, OOPSLA 2014 fast-splittable PRNG).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Identical seeds yield identical
    /// streams on every platform.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial: `true` with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Split off an independent generator (the "splittable" in SplitMix64):
    /// the child is seeded from the parent's next draw, so parent and child
    /// streams stay decorrelated and both remain fully deterministic. The
    /// fault-injection planner uses this to derive per-concern substreams
    /// (workload shape, crash point, corruption sites) from one plan seed.
    #[inline]
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire's multiply-shift rejection-free mapping is fine here: the
        // tiny modulo bias (< 2^-64 * bound) is irrelevant to cache modeling.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_tracks_probability() {
        let mut r = SplitMix64::new(99);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let mut ca = a.split();
        let mut cb = b.split();
        for _ in 0..50 {
            assert_eq!(ca.next_u64(), cb.next_u64(), "same seed, same child");
        }
        // Child and parent streams differ.
        let mut p = SplitMix64::new(7);
        let mut c = p.split();
        assert_ne!(p.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(5);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }
}
