//! Measurement utilities: latency histograms and throughput summaries.
//!
//! Every experiment in EXPERIMENTS.md reports through these types, so they
//! favour reproducibility (integer bucket math) over extreme precision.

use crate::time::SimTime;

/// A log₂-bucketed latency histogram with sub-bucket linear resolution.
///
/// Records picosecond durations into buckets whose relative error is bounded
/// by `1/SUBBUCKETS` (≈1.6 %) — the classic HdrHistogram layout, sized for
/// values from 1 ps to ~584 years.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum_ps: u128,
    max_ps: u64,
    min_ps: u64,
}

const SUBBUCKET_BITS: u32 = 6; // 64 linear sub-buckets per power of two
const SUBBUCKETS: u64 = 1 << SUBBUCKET_BITS;
const BUCKETS: usize = (64 - SUBBUCKET_BITS as usize) * SUBBUCKETS as usize;

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum_ps: 0,
            max_ps: 0,
            min_ps: u64::MAX,
        }
    }

    #[inline]
    fn index(value: u64) -> usize {
        let v = value.max(1);
        let msb = 63 - v.leading_zeros();
        if msb < SUBBUCKET_BITS {
            v as usize
        } else {
            let shift = msb - SUBBUCKET_BITS;
            let sub = (v >> shift) & (SUBBUCKETS - 1);
            ((((msb - SUBBUCKET_BITS + 1) as u64 * SUBBUCKETS) + sub) as usize).min(BUCKETS - 1)
        }
    }

    #[inline]
    fn bucket_floor(index: usize) -> u64 {
        let i = index as u64;
        if i < SUBBUCKETS {
            i
        } else {
            let exp = (i / SUBBUCKETS) as u32 + SUBBUCKET_BITS - 1;
            let sub = i % SUBBUCKETS;
            (1u64 << exp) + (sub << (exp - SUBBUCKET_BITS))
        }
    }

    /// Record one duration.
    pub fn record(&mut self, d: SimTime) {
        let ps = d.as_ps();
        self.counts[Self::index(ps)] += 1;
        self.total += 1;
        self.sum_ps += ps as u128;
        self.max_ps = self.max_ps.max(ps);
        self.min_ps = self.min_ps.min(ps);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Arithmetic mean of all samples.
    pub fn mean(&self) -> SimTime {
        if self.total == 0 {
            return SimTime::ZERO;
        }
        SimTime::from_ps((self.sum_ps / self.total as u128) as u64)
    }

    /// Largest recorded sample.
    pub fn max(&self) -> SimTime {
        SimTime::from_ps(self.max_ps)
    }

    /// Smallest recorded sample. An empty histogram reports zero — including
    /// one built only from `merge`s of empty histograms, where the internal
    /// minimum is still the `u64::MAX` sentinel.
    pub fn min(&self) -> SimTime {
        if self.total == 0 {
            SimTime::ZERO
        } else {
            SimTime::from_ps(self.min_ps)
        }
    }

    /// Value at quantile `q` in `[0, 1]`, e.g. `0.99` for p99. Returns the
    /// lower bound of the containing bucket (≤1.6 % relative error).
    pub fn quantile(&self, q: f64) -> SimTime {
        if self.total == 0 {
            return SimTime::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return SimTime::from_ps(Self::bucket_floor(i).max(self.min_ps).min(self.max_ps));
            }
        }
        self.max()
    }

    /// Condensed summary, the unit most experiments print.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.total,
            mean: self.mean(),
            min: self.min(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.total += other.total;
        self.sum_ps += other.sum_ps;
        self.max_ps = self.max_ps.max(other.max_ps);
        self.min_ps = self.min_ps.min(other.min_ps);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Condensed latency summary: count, mean, and the min/p50/p95/p99/max
/// order statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: SimTime,
    /// Minimum (zero when empty, matching [`Histogram::min`]).
    pub min: SimTime,
    /// Median.
    pub p50: SimTime,
    /// 95th percentile.
    pub p95: SimTime,
    /// 99th percentile.
    pub p99: SimTime,
    /// Maximum.
    pub max: SimTime,
}

impl core::fmt::Display for Summary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "n={} mean={} min={} p50={} p95={} p99={} max={}",
            self.count, self.mean, self.min, self.p50, self.p95, self.p99, self.max
        )
    }
}

/// Throughput helper: operations completed over a simulated interval.
#[derive(Debug, Clone, Copy)]
pub struct Throughput {
    /// Completed operations.
    pub ops: u64,
    /// Elapsed simulated time.
    pub elapsed: SimTime,
}

impl Throughput {
    /// Operations per simulated second.
    pub fn per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.ops as f64 / self.elapsed.as_secs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, SimTime::ZERO);
        assert_eq!(s.p99, SimTime::ZERO);
        assert_eq!(s.min, SimTime::ZERO);
        assert_eq!(h.min(), SimTime::ZERO);
        // Merging empty histograms must not leak the u64::MAX min sentinel.
        let mut merged = Histogram::new();
        merged.merge(&h);
        assert_eq!(merged.min(), SimTime::ZERO);
        assert_eq!(merged.summary().min, SimTime::ZERO);
    }

    #[test]
    fn single_sample_summary() {
        let mut h = Histogram::new();
        h.record(SimTime::from_ns(100.0));
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean.as_ns(), 100.0);
        assert_eq!(s.min.as_ns(), 100.0);
        assert_eq!(s.max.as_ns(), 100.0);
        // bucket floor within 1.6% of the true value
        assert!((s.p50.as_ns() - 100.0).abs() / 100.0 < 0.017);
    }

    #[test]
    fn quantiles_on_uniform_ramp() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(SimTime::from_ps(i * 1000));
        }
        let p50 = h.quantile(0.5).as_ps() as f64;
        let p99 = h.quantile(0.99).as_ps() as f64;
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.05, "p50={p50}");
        assert!((p99 - 990_000.0).abs() / 990_000.0 < 0.05, "p99={p99}");
    }

    #[test]
    fn bucket_error_is_bounded() {
        // Every value must land in a bucket whose floor is within 1/64 of it.
        for v in [1u64, 63, 64, 65, 1000, 123_456, 9_876_543_210] {
            let i = Histogram::index(v);
            let floor = Histogram::bucket_floor(i);
            assert!(floor <= v, "floor {floor} > value {v}");
            assert!(
                (v - floor) as f64 / v as f64 <= 1.0 / 32.0,
                "v={v} floor={floor}"
            );
        }
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(SimTime::from_ns(10.0));
        b.record(SimTime::from_ns(1000.0));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max().as_ns(), 1000.0);
        assert_eq!(a.min().as_ns(), 10.0);
    }

    #[test]
    fn throughput_math() {
        let t = Throughput {
            ops: 1_000,
            elapsed: SimTime::from_ms(10.0),
        };
        assert!((t.per_sec() - 100_000.0).abs() < 1e-6);
        let z = Throughput {
            ops: 5,
            elapsed: SimTime::ZERO,
        };
        assert_eq!(z.per_sec(), 0.0);
    }
}
