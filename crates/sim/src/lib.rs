//! # bionic-sim — the modeled hardware platform
//!
//! Discrete-event models of the CPU/FPGA platform from *"The bionic DBMS is
//! coming, but what will it look like?"* (Johnson & Pandis, CIDR 2013),
//! Figure 2: a Convey HC-2-class machine pairing a Xeon host with an FPGA
//! that has its own scatter-gather DRAM, bridged by PCIe.
//!
//! The crate provides:
//!
//! * [`time::SimTime`] — picosecond-resolution simulated time;
//! * [`events::EventQueue`] — a deterministic discrete-event queue;
//! * [`server`] — analytic FIFO servers and pipelined units;
//! * [`arbiter::SharedBandwidth`] — weighted arbitration of one path
//!   between contending clients (the hybrid-engine contention model);
//! * [`link::Link`] — bandwidth/latency paths (PCIe);
//! * [`mem`] — the host cache hierarchy and the FPGA's SG-DRAM;
//! * [`cpu::CpuModel`] / [`fpga`] — compute cost models for both sides;
//! * [`dev::BlockDevice`] — SAS array and SSD;
//! * [`energy`] — joules/op accounting (§2: "performance is measured in
//!   joules/operation in the dark silicon regime");
//! * [`darksilicon`] — the Amdahl/Hill-Marty/power-envelope analytics behind
//!   Figure 1;
//! * [`fault`] — deterministic hardware-fault injection (stall, transient
//!   CRC, SG-DRAM ECC), watchdog/retry policy, and the per-unit circuit
//!   breaker behind degraded-mode operation;
//! * [`platform::Platform`] — everything assembled, with an `hc2()` preset.
//!
//! Nothing here knows about databases; the DBMS crates charge their work to
//! these models and the models decide when it completes and what it costs.

#![deny(missing_docs)]

pub mod arbiter;
pub mod cpu;
pub mod darksilicon;
pub mod dev;
pub mod energy;
pub mod events;
pub mod fault;
pub mod fpga;
pub mod link;
pub mod mem;
pub mod platform;
pub mod rng;
pub mod server;
pub mod stats;
pub mod time;

pub use energy::{Energy, EnergyDomain, EnergyMeter};
pub use platform::{Platform, PlatformConfig};
pub use time::SimTime;
