//! Energy accounting.
//!
//! Under dark silicon, "performance is measured in joules/operation, with
//! latency merely a constraint" (§2). The meter makes that metric first
//! class: every modeled component charges joules to an [`EnergyDomain`], and
//! experiments report joules/op alongside throughput.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, Sub};

/// An amount of energy, in joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Energy(pub f64);

impl Energy {
    /// Zero joules.
    pub const ZERO: Energy = Energy(0.0);

    /// Construct from picojoules.
    #[inline]
    pub fn from_pj(pj: f64) -> Self {
        Energy(pj * 1e-12)
    }

    /// Construct from nanojoules.
    #[inline]
    pub fn from_nj(nj: f64) -> Self {
        Energy(nj * 1e-9)
    }

    /// Construct from microjoules.
    #[inline]
    pub fn from_uj(uj: f64) -> Self {
        Energy(uj * 1e-6)
    }

    /// Construct from joules.
    #[inline]
    pub fn from_j(j: f64) -> Self {
        Energy(j)
    }

    /// Value in joules.
    #[inline]
    pub fn as_j(self) -> f64 {
        self.0
    }

    /// Value in nanojoules.
    #[inline]
    pub fn as_nj(self) -> f64 {
        self.0 * 1e9
    }

    /// Value in microjoules.
    #[inline]
    pub fn as_uj(self) -> f64 {
        self.0 * 1e6
    }
}

impl Add for Energy {
    type Output = Energy;
    #[inline]
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    #[inline]
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    #[inline]
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Mul<u64> for Energy {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: u64) -> Energy {
        Energy(self.0 * rhs as f64)
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let j = self.0;
        if j >= 1.0 {
            write!(f, "{j:.3}J")
        } else if j >= 1e-3 {
            write!(f, "{:.3}mJ", j * 1e3)
        } else if j >= 1e-6 {
            write!(f, "{:.3}uJ", j * 1e6)
        } else if j >= 1e-9 {
            write!(f, "{:.3}nJ", j * 1e9)
        } else {
            write!(f, "{:.3}pJ", j * 1e12)
        }
    }
}

/// The physical component a joule was spent in.
///
/// These are hardware domains, not software activities; the seven-category
/// *time* breakdown of Figure 3 lives in `bionic-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum EnergyDomain {
    /// General-purpose core pipeline (instruction execution).
    CpuCore,
    /// On-chip SRAM (L1/L2/L3 accesses).
    Cache,
    /// Host-side DDR3 accesses.
    Dram,
    /// FPGA-side scatter-gather DDR3 accesses.
    SgDram,
    /// Reconfigurable-fabric operations.
    Fpga,
    /// PCIe transfers between host and FPGA.
    Pcie,
    /// Disk and SSD activity.
    Storage,
}

impl EnergyDomain {
    /// All domains, in display order.
    pub const ALL: [EnergyDomain; 7] = [
        EnergyDomain::CpuCore,
        EnergyDomain::Cache,
        EnergyDomain::Dram,
        EnergyDomain::SgDram,
        EnergyDomain::Fpga,
        EnergyDomain::Pcie,
        EnergyDomain::Storage,
    ];

    /// Short stable label for tables and CSV headers.
    pub fn label(self) -> &'static str {
        match self {
            EnergyDomain::CpuCore => "cpu",
            EnergyDomain::Cache => "cache",
            EnergyDomain::Dram => "dram",
            EnergyDomain::SgDram => "sgdram",
            EnergyDomain::Fpga => "fpga",
            EnergyDomain::Pcie => "pcie",
            EnergyDomain::Storage => "storage",
        }
    }
}

/// Accumulates energy per [`EnergyDomain`].
#[derive(Debug, Clone, Default)]
pub struct EnergyMeter {
    by_domain: [f64; 7],
}

impl EnergyMeter {
    /// A meter with all domains at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `e` joules to `domain`.
    #[inline]
    pub fn charge(&mut self, domain: EnergyDomain, e: Energy) {
        self.by_domain[domain as usize] += e.0;
    }

    /// Energy spent in one domain so far.
    pub fn domain(&self, domain: EnergyDomain) -> Energy {
        Energy(self.by_domain[domain as usize])
    }

    /// Total energy across all domains.
    pub fn total(&self) -> Energy {
        Energy(self.by_domain.iter().sum())
    }

    /// Reset every domain to zero.
    pub fn reset(&mut self) {
        self.by_domain = [0.0; 7];
    }

    /// Snapshot as `(domain, energy)` pairs in display order.
    pub fn snapshot(&self) -> Vec<(EnergyDomain, Energy)> {
        EnergyDomain::ALL
            .iter()
            .map(|&d| (d, self.domain(d)))
            .collect()
    }

    /// Difference since an earlier snapshot of the same meter, useful for
    /// attributing energy to a phase of an experiment.
    pub fn since(&self, earlier: &EnergyMeter) -> EnergyMeter {
        let mut out = EnergyMeter::new();
        for i in 0..7 {
            out.by_domain[i] = self.by_domain[i] - earlier.by_domain[i];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert!((Energy::from_nj(1.0).as_j() - 1e-9).abs() < 1e-21);
        assert!((Energy::from_pj(1000.0).as_nj() - 1.0).abs() < 1e-9);
        assert!((Energy::from_uj(2.0).as_nj() - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn arithmetic() {
        let a = Energy::from_nj(3.0);
        let b = Energy::from_nj(1.0);
        assert!(((a + b).as_nj() - 4.0).abs() < 1e-9);
        assert!(((a - b).as_nj() - 2.0).abs() < 1e-9);
        assert!(((a * 2.0).as_nj() - 6.0).abs() < 1e-9);
        assert!(((a * 3u64).as_nj() - 9.0).abs() < 1e-9);
        let s: Energy = [a, b].into_iter().sum();
        assert!((s.as_nj() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Energy::from_j(2.5)), "2.500J");
        assert_eq!(format!("{}", Energy::from_nj(42.0)), "42.000nJ");
        assert_eq!(format!("{}", Energy::from_pj(7.0)), "7.000pJ");
    }

    #[test]
    fn meter_accumulates_per_domain() {
        let mut m = EnergyMeter::new();
        m.charge(EnergyDomain::CpuCore, Energy::from_nj(10.0));
        m.charge(EnergyDomain::CpuCore, Energy::from_nj(5.0));
        m.charge(EnergyDomain::Fpga, Energy::from_nj(1.0));
        assert!((m.domain(EnergyDomain::CpuCore).as_nj() - 15.0).abs() < 1e-9);
        assert!((m.domain(EnergyDomain::Fpga).as_nj() - 1.0).abs() < 1e-9);
        assert!((m.total().as_nj() - 16.0).abs() < 1e-9);
        assert_eq!(m.domain(EnergyDomain::Dram), Energy::ZERO);
    }

    #[test]
    fn since_computes_phase_delta() {
        let mut m = EnergyMeter::new();
        m.charge(EnergyDomain::Dram, Energy::from_nj(1.0));
        let snap = m.clone();
        m.charge(EnergyDomain::Dram, Energy::from_nj(2.0));
        let delta = m.since(&snap);
        assert!((delta.domain(EnergyDomain::Dram).as_nj() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut m = EnergyMeter::new();
        m.charge(EnergyDomain::Pcie, Energy::from_nj(9.0));
        m.reset();
        assert_eq!(m.total(), Energy::ZERO);
    }
}
