//! Dark-silicon and Amdahl analytics — the model behind Figure 1 and §2.
//!
//! Figure 1 plots the *fraction of chip utilized* as parallelism varies, for
//! a 64-core 2011 chip and a 1024-core 2018 chip, at serial fractions of
//! 10 %, 1 %, 0.1 %, and 0.01 %, with part of the 2018 chip struck out as
//! "over power budget". This module provides the Amdahl and Hill-Marty
//! speedup formulas, a chip-generation model with a power envelope, and the
//! series generator the `figures` binary renders.

/// Amdahl's-law speedup of a workload with serial fraction `s` on `n` cores.
pub fn amdahl_speedup(serial_frac: f64, n: u64) -> f64 {
    assert!((0.0..=1.0).contains(&serial_frac));
    assert!(n >= 1);
    1.0 / (serial_frac + (1.0 - serial_frac) / n as f64)
}

/// Fraction of an `n`-core chip doing useful work under Amdahl: speedup/n.
///
/// This is the quantity Figure 1 shades from the top-left corner.
pub fn utilization(serial_frac: f64, n: u64) -> f64 {
    amdahl_speedup(serial_frac, n) / n as f64
}

/// Smallest serial fraction that still achieves `target` utilization on `n`
/// cores (inverse of [`utilization`] in `s`). Returns `None` if even a fully
/// parallel workload can't reach the target (target > 1).
pub fn serial_budget_for_utilization(target: f64, n: u64) -> Option<f64> {
    if !(0.0..=1.0).contains(&target) || target == 0.0 {
        return None;
    }
    // utilization = 1 / (n*s + 1 - s)  =>  s = (1/u - 1) / (n - 1)
    if n == 1 {
        return Some(1.0);
    }
    let s = (1.0 / target - 1.0) / (n as f64 - 1.0);
    (s >= 0.0).then_some(s.min(1.0))
}

/// Hill & Marty's symmetric multicore speedup \[6\]: a chip of `n` base-core
/// equivalents (BCEs) built from cores of `r` BCEs each, where a core of
/// `r` BCEs delivers `sqrt(r)` base-core performance.
pub fn hill_marty_symmetric(parallel_frac: f64, n_bce: u64, r_bce: u64) -> f64 {
    assert!(r_bce >= 1 && n_bce >= r_bce);
    let perf = (r_bce as f64).sqrt();
    let cores = (n_bce / r_bce) as f64;
    1.0 / ((1.0 - parallel_frac) / perf + parallel_frac / (perf * cores))
}

/// Hill & Marty's asymmetric speedup \[6\]: one big core of `r` BCEs plus
/// `n - r` single-BCE cores; serial work runs on the big core, parallel work
/// on everything.
pub fn hill_marty_asymmetric(parallel_frac: f64, n_bce: u64, r_bce: u64) -> f64 {
    assert!(r_bce >= 1 && n_bce >= r_bce);
    let perf = (r_bce as f64).sqrt();
    let small = (n_bce - r_bce) as f64;
    1.0 / ((1.0 - parallel_frac) / perf + parallel_frac / (perf + small))
}

/// Hill & Marty's dynamic speedup \[6\]: the chip reconfigures — serial work
/// runs as one core using all `n` BCEs (perf √n), parallel work as `n`
/// base cores. The paper's "bionic" thesis is the limit of this idea:
/// reconfigure into *specialized* logic rather than a bigger core.
pub fn hill_marty_dynamic(parallel_frac: f64, n_bce: u64) -> f64 {
    let perf = (n_bce as f64).sqrt();
    1.0 / ((1.0 - parallel_frac) / perf + parallel_frac / n_bce as f64)
}

/// A hardware generation with a power envelope.
#[derive(Debug, Clone, Copy)]
pub struct ChipGeneration {
    /// Calendar year, for labels.
    pub year: u32,
    /// Physical cores on the die.
    pub cores: u64,
    /// Fraction of the die that the power envelope keeps dark.
    pub dark_fraction: f64,
}

impl ChipGeneration {
    /// The 2011 chip of Figure 1(a): 64 cores, everything powered.
    pub fn y2011() -> Self {
        ChipGeneration {
            year: 2011,
            cores: 64,
            dark_fraction: 0.0,
        }
    }

    /// The 2018 chip of Figure 1(b): 1024 cores, ~20 % over power budget
    /// (§2's "conservative calculation").
    pub fn y2018() -> Self {
        ChipGeneration {
            year: 2018,
            cores: 1024,
            dark_fraction: 0.20,
        }
    }

    /// Generations after 2018: the usable fraction shrinks by `shrink`
    /// (30–50 % per §2; pass e.g. 0.4) each step. `steps = 0` is 2018.
    pub fn after_2018(steps: u32, shrink: f64) -> Self {
        assert!((0.0..1.0).contains(&shrink));
        let usable_2018 = 0.80f64;
        let usable = usable_2018 * (1.0 - shrink).powi(steps as i32);
        ChipGeneration {
            year: 2018 + 2 * steps,
            cores: 1024 << steps, // Moore's-law transistor doubling continues
            dark_fraction: 1.0 - usable,
        }
    }

    /// Cores that can be powered simultaneously.
    pub fn powered_cores(&self) -> u64 {
        ((self.cores as f64) * (1.0 - self.dark_fraction)).floor() as u64
    }

    /// Utilization of the *whole die* for a workload with the given serial
    /// fraction: Amdahl utilization of the powered cores, scaled by the
    /// powered fraction of the die.
    pub fn die_utilization(&self, serial_frac: f64) -> f64 {
        let powered = self.powered_cores().max(1);
        utilization(serial_frac, powered) * (powered as f64 / self.cores as f64)
    }
}

/// One curve of Figure 1: utilization vs. core count for a serial fraction.
#[derive(Debug, Clone)]
pub struct UtilizationCurve {
    /// Serial fraction of the workload.
    pub serial_frac: f64,
    /// `(cores_used, fraction_of_chip_utilized)` samples.
    pub points: Vec<(u64, f64)>,
}

/// The serial fractions Figure 1 labels.
pub const FIGURE1_SERIAL_FRACTIONS: [f64; 4] = [0.10, 0.01, 0.001, 0.0001];

/// Generate the Figure 1 curves for a chip with `max_cores` cores: for each
/// labeled serial fraction, utilization as the software spreads across
/// 1..=max_cores cores (powers of two).
pub fn figure1_curves(max_cores: u64) -> Vec<UtilizationCurve> {
    FIGURE1_SERIAL_FRACTIONS
        .iter()
        .map(|&s| {
            let mut points = Vec::new();
            let mut n = 1u64;
            while n <= max_cores {
                points.push((n, utilization(s, n)));
                n *= 2;
            }
            UtilizationCurve {
                serial_frac: s,
                points,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amdahl_limits() {
        assert_eq!(amdahl_speedup(0.0, 64), 64.0);
        assert_eq!(amdahl_speedup(1.0, 64), 1.0);
        // 10% serial caps speedup below 10x regardless of cores.
        assert!(amdahl_speedup(0.1, 1 << 20) < 10.0);
    }

    #[test]
    fn utilization_decreases_with_cores() {
        let u64c = utilization(0.01, 64);
        let u1024c = utilization(0.01, 1024);
        assert!(u64c > u1024c);
        assert!(u64c > 0.6, "u64c={u64c}");
        assert!(u1024c < 0.1, "u1024c={u1024c}");
    }

    #[test]
    fn paper_claim_two_orders_of_magnitude() {
        // §2: 0.1% serial "arguably suffices" on 64 cores, but a ~1000-core
        // chip "demands that the serial fraction decreases by roughly two
        // orders of magnitude". In the Amdahl model: 0.1% serial wastes only
        // ~6% of a 64-core chip but ~50% of a 1024-core chip, and getting a
        // 1024-core chip back to near-full utilization (99%) needs the
        // serial fraction down at ~0.001% — two orders below 0.1%.
        let u_2011 = utilization(0.001, 64);
        assert!(u_2011 > 0.9, "u_2011={u_2011}");
        let u_2018_same_s = utilization(0.001, 1024);
        assert!(u_2018_same_s < 0.55, "u_2018={u_2018_same_s}");
        let needed = serial_budget_for_utilization(0.99, 1024).unwrap();
        assert!(
            needed <= 0.001 / 90.0,
            "serial budget must shrink ~100x, got {needed}"
        );
    }

    #[test]
    fn serial_budget_inverts_utilization() {
        for &(target, n) in &[(0.5, 64u64), (0.9, 1024), (0.2, 256)] {
            let s = serial_budget_for_utilization(target, n).unwrap();
            let u = utilization(s, n);
            assert!((u - target).abs() < 1e-9, "target={target} got={u}");
        }
        assert_eq!(serial_budget_for_utilization(0.0, 64), None);
        assert_eq!(serial_budget_for_utilization(1.0, 1), Some(1.0));
    }

    #[test]
    fn hill_marty_symmetric_matches_amdahl_for_unit_cores() {
        let f = 0.99;
        let hm = hill_marty_symmetric(f, 256, 1);
        let am = amdahl_speedup(1.0 - f, 256);
        assert!((hm - am).abs() < 1e-9);
    }

    #[test]
    fn hill_marty_asymmetric_beats_symmetric_at_high_serial() {
        // With 10% serial work, one fat core + many small beats all-small.
        let f = 0.90;
        let sym = hill_marty_symmetric(f, 256, 1);
        let asym = hill_marty_asymmetric(f, 256, 64);
        assert!(asym > sym, "sym={sym} asym={asym}");
    }

    #[test]
    fn dynamic_dominates_both_fixed_topologies() {
        // [6]: dynamic >= asymmetric >= symmetric for any f.
        for f in [0.5, 0.9, 0.99] {
            let dynamic = hill_marty_dynamic(f, 256);
            let asym = hill_marty_asymmetric(f, 256, 16);
            let sym = hill_marty_symmetric(f, 256, 16);
            assert!(
                dynamic >= asym && asym >= sym,
                "f={f}: {dynamic} {asym} {sym}"
            );
        }
    }

    #[test]
    fn chip_2018_is_twenty_percent_dark() {
        let g = ChipGeneration::y2018();
        assert_eq!(g.powered_cores(), 819);
        let g11 = ChipGeneration::y2011();
        assert_eq!(g11.powered_cores(), 64);
    }

    #[test]
    fn post_2018_usable_fraction_shrinks_per_generation() {
        let g0 = ChipGeneration::after_2018(0, 0.4);
        let g1 = ChipGeneration::after_2018(1, 0.4);
        let g2 = ChipGeneration::after_2018(2, 0.4);
        let usable = |g: &ChipGeneration| 1.0 - g.dark_fraction;
        assert!((usable(&g0) - 0.8).abs() < 1e-9);
        assert!((usable(&g1) - 0.48).abs() < 1e-9);
        assert!((usable(&g2) - 0.288).abs() < 1e-9);
        // Cores keep doubling even though fewer can be powered.
        assert_eq!(g1.cores, 2048);
    }

    #[test]
    fn die_utilization_combines_amdahl_and_power() {
        let g = ChipGeneration::y2018();
        // Perfectly parallel work still can't use the dark 20%.
        let u = g.die_utilization(0.0);
        assert!((u - 0.7998).abs() < 1e-3, "u={u}");
        // 1% serial work on 819 powered cores uses almost nothing.
        assert!(g.die_utilization(0.01) < 0.1);
    }

    #[test]
    fn figure1_curves_have_expected_shape() {
        let curves = figure1_curves(1024);
        assert_eq!(curves.len(), 4);
        for c in &curves {
            // Utilization monotonically non-increasing in core count.
            for w in c.points.windows(2) {
                assert!(w[1].1 <= w[0].1 + 1e-12);
            }
            assert_eq!(c.points.first().unwrap().1, 1.0);
        }
        // At 1024 cores the 10% curve is far below the 0.01% curve.
        let at_1024 = |i: usize| curves[i].points.last().unwrap().1;
        assert!(at_1024(0) < 0.01);
        assert!(at_1024(3) > 0.9);
    }
}
