//! Deterministic hardware-fault injection and degraded-mode machinery.
//!
//! The bionic platform only makes sense if it survives its own
//! accelerators: a system that wedges when the tree-probe unit stalls or
//! the PCIe link drops a transfer is worse than the software baseline it
//! replaces. This module supplies the three pieces the engine layers on
//! top of every offloaded operation:
//!
//! * **Fault models** ([`FaultRates`], [`FaultInjector`]): three injectable
//!   fault families, drawn per hardware attempt from a seeded
//!   [`SplitMix64`] substream so every failure is replayable —
//!   [`HwFault::Stall`] (the FPGA unit hangs; only a watchdog timeout
//!   notices), [`HwFault::Transient`] (a CPU–FPGA link transfer arrives
//!   with a bad CRC and is discarded), and [`HwFault::Ecc`] (SG-DRAM
//!   returns an uncorrectable-ECC word; the access must be retried or
//!   abandoned).
//! * **Watchdog + retry policy** (fields of [`HwFaultConfig`]): a sim-time
//!   timeout per attempt, bounded deterministic retries with exponential
//!   backoff, and on exhaustion a per-op fallback to the corresponding
//!   software path.
//! * **A per-unit circuit breaker** ([`CircuitBreaker`]): Closed → Open →
//!   HalfOpen with periodic recovery probes, so a persistently failing
//!   unit is quarantined and the engine runs in a mixed hardware/software
//!   configuration instead of paying a watchdog timeout per op.
//!
//! [`DegradedUnit`] bundles all three per functional unit and exposes one
//! question — [`DegradedUnit::try_hw`]: "does this op run in hardware, and
//! how much time did faults cost it?" The engine's hardware paths are pure
//! *pricing* (functional results always come from the software-maintained
//! structures), so a fallback can never change committed results — it only
//! changes where the time and energy went. That is what lets the chaos
//! oracle check fault-heavy runs against the same reference model.
//!
//! Everything here is deterministic: the injector consumes exactly one RNG
//! draw per hardware attempt (and none when the rates are all zero), and
//! the breaker is a pure function of the observed success/failure sequence
//! and sim-time clock.

use crate::rng::SplitMix64;
use crate::time::SimTime;

/// Basis points per attempt (1 bp = 0.01 %) for each fault family.
/// `10_000` saturates: every hardware attempt faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRates {
    /// Unit stall/hang probability (caught only by the watchdog timeout).
    pub stall_bp: u32,
    /// Transient link-transfer error probability (CRC-style detection).
    pub transient_bp: u32,
    /// SG-DRAM uncorrectable-ECC word probability.
    pub ecc_bp: u32,
}

impl FaultRates {
    /// No faults at all (the injector draws nothing from the RNG).
    pub const ZERO: FaultRates = FaultRates {
        stall_bp: 0,
        transient_bp: 0,
        ecc_bp: 0,
    };

    /// The same rate for every family.
    pub fn uniform(bp: u32) -> Self {
        FaultRates {
            stall_bp: bp,
            transient_bp: bp,
            ecc_bp: bp,
        }
    }

    /// Are all families disabled?
    pub fn is_zero(&self) -> bool {
        self.stall_bp == 0 && self.transient_bp == 0 && self.ecc_bp == 0
    }

    /// Sum of all families, saturating at 10 000 (every attempt faults).
    pub fn total_bp(&self) -> u32 {
        self.stall_bp
            .saturating_add(self.transient_bp)
            .saturating_add(self.ecc_bp)
            .min(10_000)
    }
}

/// One injected hardware fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwFault {
    /// The unit hung; nothing comes back until the watchdog fires.
    Stall,
    /// The transfer arrived but its CRC check failed; the payload is
    /// discarded and the op retried.
    Transient,
    /// SG-DRAM returned an uncorrectable-ECC word for the accessed line.
    Ecc,
}

/// Seeded per-attempt fault source. One [`SplitMix64`] draw per attempt;
/// zero draws when the rates are all zero, so an armed-but-silent injector
/// is bit-identical to no injector at all.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rates: FaultRates,
    rng: SplitMix64,
}

impl FaultInjector {
    /// Build an injector over its own decorrelated RNG substream.
    pub fn new(rates: FaultRates, rng: SplitMix64) -> Self {
        FaultInjector { rates, rng }
    }

    /// The configured rates.
    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// Draw the fate of one hardware attempt.
    pub fn draw(&mut self) -> Option<HwFault> {
        if self.rates.is_zero() {
            return None;
        }
        let r = self.rng.below(10_000) as u32;
        if r < self.rates.stall_bp {
            Some(HwFault::Stall)
        } else if r < self.rates.stall_bp.saturating_add(self.rates.transient_bp) {
            Some(HwFault::Transient)
        } else if r < self.rates.total_bp() {
            Some(HwFault::Ecc)
        } else {
            None
        }
    }
}

/// Circuit-breaker state (the classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: hardware attempts flow freely.
    Closed,
    /// Quarantined: every op falls back to software immediately (no
    /// watchdog cost) until `open_duration` elapses.
    Open,
    /// Probing: attempts are allowed again; one failure re-opens, enough
    /// consecutive successes close.
    HalfOpen,
}

impl BreakerState {
    /// Stable numeric encoding for metrics gauges (0/1/2).
    pub fn as_u8(self) -> u8 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive hardware-attempt failures that trip Closed → Open.
    pub failure_threshold: u32,
    /// Quarantine period before a recovery probe is allowed (Open →
    /// HalfOpen).
    pub open_duration: SimTime,
    /// Consecutive HalfOpen successes required to close again.
    pub halfopen_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 4,
            open_duration: SimTime::from_us(200.0),
            halfopen_successes: 2,
        }
    }
}

/// Per-unit circuit breaker: Closed → Open → HalfOpen, driven entirely by
/// the observed success/failure sequence and the sim-time clock — no
/// internal randomness, so transitions are deterministic for a fixed seed.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    halfopen_successes: u32,
    opened_at: SimTime,
    opens: u64,
    closes: u64,
    time_open: SimTime,
}

impl CircuitBreaker {
    /// A closed (healthy) breaker.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            halfopen_successes: 0,
            opened_at: SimTime::ZERO,
            opens: 0,
            closes: 0,
            time_open: SimTime::ZERO,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// May a hardware attempt be issued at `now`? An Open breaker whose
    /// quarantine has elapsed transitions to HalfOpen here (the periodic
    /// recovery probe); an Open breaker mid-quarantine answers `false`.
    pub fn allow(&mut self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now >= self.opened_at + self.cfg.open_duration {
                    self.time_open += now.saturating_sub(self.opened_at);
                    self.state = BreakerState::HalfOpen;
                    self.halfopen_successes = 0;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful hardware attempt.
    pub fn record_success(&mut self, _now: SimTime) {
        match self.state {
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                self.halfopen_successes += 1;
                if self.halfopen_successes >= self.cfg.halfopen_successes {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                    self.closes += 1;
                }
            }
            BreakerState::Open => {}
        }
    }

    /// Record a failed hardware attempt.
    pub fn record_failure(&mut self, now: SimTime) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.failure_threshold {
                    self.trip(now);
                }
            }
            BreakerState::HalfOpen => self.trip(now),
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now: SimTime) {
        self.state = BreakerState::Open;
        self.opened_at = now;
        self.consecutive_failures = 0;
        self.halfopen_successes = 0;
        self.opens += 1;
    }

    /// Closed → Open transitions so far.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// HalfOpen → Closed recoveries so far.
    pub fn closes(&self) -> u64 {
        self.closes
    }

    /// Cumulative time spent quarantined (Open) up to `now`.
    pub fn time_degraded(&self, now: SimTime) -> SimTime {
        match self.state {
            BreakerState::Open => self.time_open + now.saturating_sub(self.opened_at),
            _ => self.time_open,
        }
    }
}

/// Everything the degraded-mode layer needs: injection rates, the
/// watchdog/retry policy, and the breaker tuning. Attached (optionally) to
/// an engine config; `None` means the fault layer does not exist at all —
/// zero RNG draws, zero code-path changes, byte-identical pricing.
#[derive(Debug, Clone, PartialEq)]
pub struct HwFaultConfig {
    /// Per-attempt fault rates, applied to every hardware unit.
    pub rates: FaultRates,
    /// Watchdog timeout: how long a stalled attempt waits before the op is
    /// declared dead (nothing shorter can catch a silent hang).
    pub watchdog_timeout: SimTime,
    /// Detection latency for CRC/ECC-flagged attempts (the error is
    /// *reported*, so it costs far less than a watchdog expiry).
    pub detect_latency: SimTime,
    /// Base retry backoff; attempt `k` waits `backoff_base << k`.
    pub backoff_base: SimTime,
    /// Retries after the first attempt before falling back to software.
    pub max_retries: u32,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
}

impl HwFaultConfig {
    /// Default policy around the given per-family rate (the E14 sweep
    /// knob): 25 µs watchdog, 3 µs detection, 5 µs backoff base, 3
    /// retries, default breaker.
    pub fn uniform(bp: u32) -> Self {
        HwFaultConfig {
            rates: FaultRates::uniform(bp),
            watchdog_timeout: SimTime::from_us(25.0),
            detect_latency: SimTime::from_us(3.0),
            backoff_base: SimTime::from_us(5.0),
            max_retries: 3,
            breaker: BreakerConfig::default(),
        }
    }

    /// Explicit per-family rates with the default policy.
    pub fn from_rates(rates: FaultRates) -> Self {
        HwFaultConfig {
            rates,
            ..Self::uniform(0)
        }
    }

    /// Every attempt faults, cycling through all three families — the
    /// forced-fallback configuration the degradation torture shard uses to
    /// push every op class through timeout → retry → fallback.
    pub fn saturated() -> Self {
        HwFaultConfig {
            rates: FaultRates {
                stall_bp: 3_400,
                transient_bp: 3_300,
                ecc_bp: 3_300,
            },
            ..Self::uniform(0)
        }
    }
}

/// Counters one [`DegradedUnit`] accumulates (all deterministic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradeStats {
    /// Ops that consulted this unit.
    pub ops: u64,
    /// Ops answered by hardware (possibly after retries).
    pub hw_ok: u64,
    /// Ops that fell back to the software path.
    pub fallbacks: u64,
    /// Failed hardware attempts that were retried.
    pub retries: u64,
    /// Watchdog expiries (stall/hang family).
    pub stalls: u64,
    /// CRC-detected transient transfer errors.
    pub crc_errors: u64,
    /// Uncorrectable-ECC words from SG-DRAM.
    pub ecc_errors: u64,
}

/// The verdict for one offloaded op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwDecision {
    /// Run the op in hardware? (`false` = take the software path.)
    pub hw: bool,
    /// Time spent on failed attempts before the verdict: watchdog waits,
    /// error-detection latency, and retry backoff. The caller charges this
    /// as agent-occupying wait time.
    pub delay: SimTime,
    /// Failed attempts that were retried for this op.
    pub retries: u32,
}

/// One hardware unit wrapped in watchdog + retry + breaker. The engine
/// keeps one per offloaded unit (probe, log, queue, overlay, scanner),
/// each over its own decorrelated RNG substream.
#[derive(Debug, Clone)]
pub struct DegradedUnit {
    injector: FaultInjector,
    breaker: CircuitBreaker,
    watchdog_timeout: SimTime,
    detect_latency: SimTime,
    backoff_base: SimTime,
    max_retries: u32,
    /// Accumulated counters.
    pub stats: DegradeStats,
}

impl DegradedUnit {
    /// Build one unit from the shared config and its private RNG stream.
    pub fn new(cfg: &HwFaultConfig, rng: SplitMix64) -> Self {
        DegradedUnit {
            injector: FaultInjector::new(cfg.rates, rng),
            breaker: CircuitBreaker::new(cfg.breaker),
            watchdog_timeout: cfg.watchdog_timeout,
            detect_latency: cfg.detect_latency,
            backoff_base: cfg.backoff_base,
            max_retries: cfg.max_retries,
            stats: DegradeStats::default(),
        }
    }

    /// The unit's breaker (read access for metrics/tests).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Decide the fate of one offloaded op issued at `now`: hardware
    /// (possibly after deterministic retries) or software fallback, plus
    /// the fault-time the op must absorb. A quarantined unit (breaker
    /// Open) answers "software, zero delay" — the whole point of the
    /// breaker is to stop paying watchdog timeouts per op.
    pub fn try_hw(&mut self, now: SimTime) -> HwDecision {
        self.stats.ops += 1;
        if !self.breaker.allow(now) {
            self.stats.fallbacks += 1;
            return HwDecision {
                hw: false,
                delay: SimTime::ZERO,
                retries: 0,
            };
        }
        let mut delay = SimTime::ZERO;
        let mut retries = 0u32;
        loop {
            match self.injector.draw() {
                None => {
                    self.breaker.record_success(now + delay);
                    self.stats.hw_ok += 1;
                    return HwDecision {
                        hw: true,
                        delay,
                        retries,
                    };
                }
                Some(fault) => {
                    delay += match fault {
                        HwFault::Stall => {
                            self.stats.stalls += 1;
                            self.watchdog_timeout
                        }
                        HwFault::Transient => {
                            self.stats.crc_errors += 1;
                            self.detect_latency
                        }
                        HwFault::Ecc => {
                            self.stats.ecc_errors += 1;
                            self.detect_latency
                        }
                    };
                    self.breaker.record_failure(now + delay);
                    if retries >= self.max_retries {
                        self.stats.fallbacks += 1;
                        return HwDecision {
                            hw: false,
                            delay,
                            retries,
                        };
                    }
                    // Exponential backoff before the next attempt; if the
                    // breaker tripped on this failure, stop burning time.
                    delay += self.backoff_base * (1u64 << retries.min(16));
                    retries += 1;
                    self.stats.retries += 1;
                    if !self.breaker.allow(now + delay) {
                        self.stats.fallbacks += 1;
                        return HwDecision {
                            hw: false,
                            delay,
                            retries,
                        };
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(cfg: &HwFaultConfig, seed: u64) -> DegradedUnit {
        DegradedUnit::new(cfg, SplitMix64::new(seed))
    }

    #[test]
    fn zero_rates_never_touch_the_rng() {
        let mut a = FaultInjector::new(FaultRates::ZERO, SplitMix64::new(9));
        for _ in 0..1000 {
            assert_eq!(a.draw(), None);
        }
        // The RNG stream was never advanced.
        let mut untouched = SplitMix64::new(9);
        let mut b = FaultInjector::new(FaultRates::uniform(10_000), SplitMix64::new(9));
        assert!(b.draw().is_some());
        let _ = untouched.next_u64();
        // (a's rng state equality is implied by zero draws: a fresh
        // injector with the same seed produces the same first fault.)
        let mut c = FaultInjector::new(FaultRates::uniform(10_000), a.rng);
        let mut d = FaultInjector::new(FaultRates::uniform(10_000), SplitMix64::new(9));
        assert_eq!(c.draw(), d.draw());
    }

    #[test]
    fn draws_are_deterministic_and_family_rates_track() {
        let rates = FaultRates {
            stall_bp: 1_000,
            transient_bp: 2_000,
            ecc_bp: 500,
        };
        let mut a = FaultInjector::new(rates, SplitMix64::new(7));
        let mut b = FaultInjector::new(rates, SplitMix64::new(7));
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            let fa = a.draw();
            assert_eq!(fa, b.draw());
            match fa {
                None => counts[0] += 1,
                Some(HwFault::Stall) => counts[1] += 1,
                Some(HwFault::Transient) => counts[2] += 1,
                Some(HwFault::Ecc) => counts[3] += 1,
            }
        }
        // 10% / 20% / 5% within generous tolerance.
        assert!((counts[1] as f64 / 40_000.0 - 0.10).abs() < 0.02);
        assert!((counts[2] as f64 / 40_000.0 - 0.20).abs() < 0.02);
        assert!((counts[3] as f64 / 40_000.0 - 0.05).abs() < 0.02);
    }

    #[test]
    fn breaker_trips_quarantines_and_recovers() {
        let cfg = BreakerConfig {
            failure_threshold: 3,
            open_duration: SimTime::from_us(100.0),
            halfopen_successes: 2,
        };
        let mut b = CircuitBreaker::new(cfg);
        let t0 = SimTime::ZERO;
        assert!(b.allow(t0));
        b.record_failure(t0);
        b.record_failure(t0);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(t0);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);
        // Mid-quarantine: denied.
        assert!(!b.allow(t0 + SimTime::from_us(50.0)));
        // Quarantine over: recovery probe allowed, state HalfOpen.
        let probe_at = t0 + SimTime::from_us(150.0);
        assert!(b.allow(probe_at));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success(probe_at);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success(probe_at);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.closes(), 1);
        assert_eq!(b.time_degraded(probe_at), SimTime::from_us(150.0));
    }

    #[test]
    fn halfopen_failure_reopens() {
        let cfg = BreakerConfig {
            failure_threshold: 1,
            open_duration: SimTime::from_us(10.0),
            halfopen_successes: 1,
        };
        let mut b = CircuitBreaker::new(cfg);
        b.record_failure(SimTime::ZERO);
        assert_eq!(b.state(), BreakerState::Open);
        let probe_at = SimTime::from_us(20.0);
        assert!(b.allow(probe_at));
        b.record_failure(probe_at);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 2);
    }

    #[test]
    fn saturated_unit_always_falls_back_and_opens_the_breaker() {
        let cfg = HwFaultConfig::saturated();
        let mut u = unit(&cfg, 3);
        let d = u.try_hw(SimTime::ZERO);
        assert!(!d.hw);
        assert!(d.delay > SimTime::ZERO);
        assert_eq!(u.stats.fallbacks, 1);
        assert_eq!(u.breaker().state(), BreakerState::Open);
        // Quarantined: the next op is an instant software fallback.
        let d2 = u.try_hw(SimTime::from_us(1.0));
        assert!(!d2.hw);
        assert_eq!(d2.delay, SimTime::ZERO);
        assert_eq!(u.stats.fallbacks, 2);
    }

    #[test]
    fn clean_unit_stays_in_hardware_with_zero_delay() {
        let cfg = HwFaultConfig::uniform(0);
        let mut u = unit(&cfg, 5);
        for i in 0..100u64 {
            let d = u.try_hw(SimTime::from_us(i as f64));
            assert!(d.hw);
            assert_eq!(d.delay, SimTime::ZERO);
        }
        assert_eq!(u.stats.hw_ok, 100);
        assert_eq!(u.stats.fallbacks, 0);
        assert_eq!(u.breaker().state(), BreakerState::Closed);
    }

    #[test]
    fn retry_delay_grows_exponentially() {
        // transient-only faults, so the per-attempt cost is detect_latency.
        let mut cfg = HwFaultConfig::from_rates(FaultRates {
            stall_bp: 0,
            transient_bp: 10_000,
            ecc_bp: 0,
        });
        cfg.breaker.failure_threshold = 100; // keep the breaker out of it
        let mut u = unit(&cfg, 1);
        let d = u.try_hw(SimTime::ZERO);
        assert!(!d.hw);
        assert_eq!(d.retries, cfg.max_retries);
        // 4 attempts × detect + backoff 1x+2x+4x of the base.
        let expect = cfg.detect_latency * 4 + cfg.backoff_base * 7;
        assert_eq!(d.delay, expect);
    }

    #[test]
    fn unit_decisions_are_deterministic_per_seed() {
        let cfg = HwFaultConfig::uniform(800);
        let mut a = unit(&cfg, 42);
        let mut b = unit(&cfg, 42);
        for i in 0..500u64 {
            let t = SimTime::from_us((i * 3) as f64);
            assert_eq!(a.try_hw(t), b.try_hw(t));
        }
        assert_eq!(a.stats, b.stats);
    }
}
