//! The general-purpose core model.
//!
//! Instruction execution is charged at a fixed rate (frequency × IPC) plus a
//! fixed energy per instruction. The per-instruction energy is deliberately
//! high relative to the FPGA's per-op energy: the paper (via Conservation
//! Cores \[15\] and the dark-silicon literature \[3\]) argues that most of a
//! general-purpose core's energy is structural overhead — fetch, decode,
//! rename, speculate — not useful work, and that this gap is exactly what
//! custom hardware reclaims.

use crate::energy::Energy;
use crate::time::SimTime;

/// A fixed-rate CPU core cost model.
#[derive(Debug, Clone)]
pub struct CpuModel {
    freq_hz: f64,
    ipc: f64,
    energy_per_instr: Energy,
}

impl CpuModel {
    /// Create a model from clock frequency, sustained IPC, and energy per
    /// retired instruction.
    pub fn new(freq_hz: f64, ipc: f64, energy_per_instr: Energy) -> Self {
        assert!(freq_hz > 0.0 && ipc > 0.0);
        CpuModel {
            freq_hz,
            ipc,
            energy_per_instr,
        }
    }

    /// A 2011-class Xeon core running OLTP: 2.5 GHz and IPC ≈ 1 — OLTP
    /// famously fails to fill wider pipelines \[1\]. 2 nJ/instruction (~5 W
    /// per busy core, including its share of uncore) follows the
    /// Conservation-Cores observation \[15\] that most of a general-purpose
    /// core's energy is structural overhead, not computation.
    pub fn xeon_oltp() -> Self {
        CpuModel::new(2.5e9, 1.0, Energy::from_nj(2.0))
    }

    /// Time and energy to execute `instructions` (compute only — memory
    /// stalls are charged separately by the cache model).
    pub fn compute(&self, instructions: u64) -> (SimTime, Energy) {
        let secs = instructions as f64 / (self.freq_hz * self.ipc);
        (
            SimTime::from_secs(secs),
            self.energy_per_instr * instructions,
        )
    }

    /// Seconds per instruction — handy for analytic cross-checks.
    pub fn instr_time(&self) -> SimTime {
        SimTime::from_secs(1.0 / (self.freq_hz * self.ipc))
    }

    /// Energy per instruction.
    pub fn instr_energy(&self) -> Energy {
        self.energy_per_instr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_instruction_slot_is_400ps() {
        let cpu = CpuModel::xeon_oltp();
        assert_eq!(cpu.instr_time().as_ps(), 400);
    }

    #[test]
    fn compute_scales_linearly() {
        let cpu = CpuModel::xeon_oltp();
        let (t, e) = cpu.compute(1000);
        assert_eq!(t.as_ns(), 400.0);
        assert!((e.as_nj() - 2000.0).abs() < 1e-9);
        let (t2, _) = cpu.compute(2000);
        assert_eq!(t2.as_ps(), t.as_ps() * 2);
    }

    #[test]
    fn ipc_divides_time_not_energy() {
        let wide = CpuModel::new(2.5e9, 2.0, Energy::from_nj(1.0));
        let (t, e) = wide.compute(1000);
        assert_eq!(t.as_ns(), 200.0);
        assert!((e.as_nj() - 1000.0).abs() < 1e-9);
    }
}
