//! Storage devices: the SAS disk array (database files, FPGA side) and the
//! SSD (log files, CPU side) from Figure 2.
//!
//! §5.2 exploits the platform's non-uniform paths to storage: database files
//! live behind the FPGA on spinning SAS (5 ms seeks, fine for bulk merges),
//! while the log goes to a low-latency SSD (20 µs) on the host so commits
//! aren't gated on mechanical latency.

use crate::energy::Energy;
use crate::server::Server;
use crate::time::SimTime;

/// A block storage device modeled as a single FIFO server with a positioning
/// cost for random requests.
#[derive(Debug, Clone)]
pub struct BlockDevice {
    server: Server,
    bytes_per_sec: f64,
    seek: SimTime,
    energy_per_byte: Energy,
    energy_per_op: Energy,
    last_offset: Option<u64>,
    reads: u64,
    writes: u64,
    bytes: u64,
}

impl BlockDevice {
    /// Create a device with the given bandwidth, positioning (seek) latency,
    /// and energy costs.
    pub fn new(
        bytes_per_sec: f64,
        seek: SimTime,
        energy_per_byte: Energy,
        energy_per_op: Energy,
    ) -> Self {
        assert!(bytes_per_sec > 0.0);
        BlockDevice {
            server: Server::new(),
            bytes_per_sec,
            seek,
            energy_per_byte,
            energy_per_op,
            last_offset: None,
            reads: 0,
            writes: 0,
            bytes: 0,
        }
    }

    /// The 2× SAS array of Figure 2: 12 Gb/s (1.5 GB/s), 5 ms positioning.
    pub fn sas_array() -> Self {
        BlockDevice::new(
            1.5e9,
            SimTime::from_ms(5.0),
            Energy::from_nj(1.0),
            Energy::from_uj(100.0),
        )
    }

    /// The host SSD of Figure 2: 500 MB/s, 20 µs access.
    pub fn ssd() -> Self {
        BlockDevice::new(
            500e6,
            SimTime::from_us(20.0),
            Energy::from_nj(0.5),
            Energy::from_uj(1.0),
        )
    }

    fn io(&mut self, arrive: SimTime, offset: u64, bytes: u64) -> (SimTime, Energy) {
        // Sequential follow-on (next offset contiguous with the previous
        // request) skips the positioning cost.
        let sequential = self.last_offset == Some(offset);
        let position = if sequential { SimTime::ZERO } else { self.seek };
        let transfer = SimTime::from_secs(bytes as f64 / self.bytes_per_sec);
        let (_, done) = self.server.submit(arrive, position + transfer);
        self.last_offset = Some(offset + bytes);
        self.bytes += bytes;
        (done, self.energy_per_op + self.energy_per_byte * bytes)
    }

    /// Read `bytes` at `offset`; returns completion time and energy.
    pub fn read(&mut self, arrive: SimTime, offset: u64, bytes: u64) -> (SimTime, Energy) {
        self.reads += 1;
        self.io(arrive, offset, bytes)
    }

    /// Write `bytes` at `offset`; returns completion (durable) time, energy.
    pub fn write(&mut self, arrive: SimTime, offset: u64, bytes: u64) -> (SimTime, Energy) {
        self.writes += 1;
        self.io(arrive, offset, bytes)
    }

    /// Positioning latency for a random request.
    pub fn seek_time(&self) -> SimTime {
        self.seek
    }

    /// `(reads, writes, total bytes)` so far.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.reads, self.writes, self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_read_pays_the_seek() {
        let mut d = BlockDevice::sas_array();
        let (done, _) = d.read(SimTime::ZERO, 0, 8192);
        // 5 ms seek dominates: 8 KiB at 1.5 GB/s is ~5.5 us.
        assert!(done.as_ms() > 5.0 && done.as_ms() < 5.1, "done={done}");
    }

    #[test]
    fn sequential_follow_on_skips_the_seek() {
        let mut d = BlockDevice::sas_array();
        let (first, _) = d.read(SimTime::ZERO, 0, 1 << 20);
        let (second, _) = d.read(first, 1 << 20, 1 << 20);
        // Second MiB takes only transfer time: ~0.7 ms at 1.5 GB/s.
        let delta = (second - first).as_ms();
        assert!(delta < 1.0, "delta={delta}ms");
    }

    #[test]
    fn ssd_is_three_orders_faster_to_position() {
        let ssd = BlockDevice::ssd();
        let sas = BlockDevice::sas_array();
        let ratio = sas.seek_time().as_us() / ssd.seek_time().as_us();
        assert!((ratio - 250.0).abs() < 1.0, "ratio={ratio}");
    }

    #[test]
    fn requests_serialize_fifo() {
        let mut d = BlockDevice::ssd();
        let (d1, _) = d.write(SimTime::ZERO, 0, 4096);
        let (d2, _) = d.write(SimTime::ZERO, 1 << 30, 4096);
        assert!(d2 > d1);
        let (r, w, b) = d.counters();
        assert_eq!((r, w, b), (0, 2, 8192));
    }

    #[test]
    fn energy_has_fixed_and_per_byte_parts() {
        let mut d = BlockDevice::ssd();
        let (_, e_small) = d.write(SimTime::ZERO, 0, 1);
        let (_, e_big) = d.write(SimTime::from_secs(1.0), 1 << 30, 1 << 20);
        assert!(e_big > e_small);
        assert!(e_small.as_uj() >= 1.0); // at least the per-op cost
    }
}
