//! The hardware tree-probe engine of §5.3.
//!
//! The paper's observations, all of which this model encodes:
//!
//! * software probes are "a few dozen machine instructions, mostly triplets
//!   of the form load-compare-branch" — control flow that "maps extremely
//!   well to hardware";
//! * the unit gets *direct* access to SG-DRAM, bypassing any cache, and
//!   "should allow the unit to saturate using only perhaps a dozen
//!   outstanding requests, with no need for those requests to arrive
//!   simultaneously";
//! * the hardware guarantees atomicity of each probe; concurrency control
//!   happened before the request arrived (DORA), and logging is logical;
//! * "even if an index is too large to fit in memory … the hardware can rely
//!   on software for disk accesses and abort any operations that fall out of
//!   memory" — the [`ProbeOutcome::Aborted`] path;
//! * splits and reorganization stay in software (`bionic-btree::tree`).
//!
//! A probe of a tree of height *h* performs, per level, a short dependent
//! chain of K-ary search rounds against SG-DRAM (each round fetches a 64 B
//! burst of keys and compares them in parallel in fabric) plus a few fabric
//! cycles. Per-probe latency is therefore *worse* than a warm-cache software
//! probe — exactly the paper's point that the goal is asynchrony and joules,
//! not per-request latency.
//!
//! ### Timing model
//!
//! Two resources bound the unit: the `max_outstanding` probe contexts
//! (Little's law: capacity = contexts / chain latency) and a serial
//! round-completion stage (tag match + compare dispatch, a few cycles per
//! memory round). Because the engine submits probes in functional order —
//! not time order — queueing is computed from *windowed utilization*
//! (an M/D/1-style delay on the binding resource) rather than a FIFO
//! timeline, which would convert submission-order jitter into unbounded
//! phantom backlog. The model is deterministic and saturates at
//! [`ProbeEngine::capacity_per_sec`].

use bionic_sim::energy::Energy;
use bionic_sim::fpga::{FpgaFabric, FpgaUnit, OutOfArea};
use bionic_sim::mem::SgDram;
use bionic_sim::time::SimTime;

/// Configuration of the probe engine.
#[derive(Debug, Clone)]
pub struct ProbeEngineConfig {
    /// Concurrent probe contexts (the paper's "perhaps a dozen").
    pub max_outstanding: usize,
    /// Dependent memory *rounds* per tree level. The unit does a K-ary
    /// search: each round fetches one 64-byte burst of keys and compares
    /// them all in parallel in fabric (the "high-dimensional" mapping of
    /// §4), so a 256-key node needs 3 rounds (256 → 32 → 4).
    pub rounds_per_level: u32,
    /// SG-DRAM 64-bit accesses per round (one 64 B burst).
    pub accesses_per_round: u32,
    /// Fabric cycles of compare/select logic per level.
    pub cycles_per_level: u64,
    /// Fabric cycles the serial completion stage spends per memory round
    /// (tag match, compare dispatch, next-address generation). At 6 cycles
    /// (30 ns), a 9-round probe occupies the stage for 270 ns, so
    /// ~400 ns / 30 ns ≈ 13 in-flight probes saturate it — the paper's
    /// "dozen outstanding requests".
    pub round_stage_cycles: u64,
    /// Fabric energy per level of traversal.
    pub energy_per_level: Energy,
    /// Area the unit occupies. §5.3: "the proposed hardware unit would be
    /// extremely compact".
    pub area_slices: u64,
}

impl Default for ProbeEngineConfig {
    fn default() -> Self {
        ProbeEngineConfig {
            max_outstanding: 12,
            rounds_per_level: 3, // K-ary search of a 256-key node
            accesses_per_round: 8,
            cycles_per_level: 4,
            round_stage_cycles: 6,
            energy_per_level: Energy::from_pj(200.0),
            area_slices: 8_000,
        }
    }
}

/// Result of one hardware probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProbeOutcome {
    /// Probe completed at the given time.
    Done {
        /// Completion time (at the FPGA; PCIe return is the caller's).
        at: SimTime,
        /// Energy spent (fabric + SG-DRAM).
        energy: Energy,
    },
    /// Probe hit a non-resident node and aborted for software fallback.
    Aborted {
        /// Level (1-based) at which the miss occurred.
        at_level: u32,
        /// Time the abort was signalled.
        at: SimTime,
        /// Energy spent on the partial traversal.
        energy: Energy,
    },
}

impl ProbeOutcome {
    /// Completion/abort time.
    pub fn time(&self) -> SimTime {
        match self {
            ProbeOutcome::Done { at, .. } | ProbeOutcome::Aborted { at, .. } => *at,
        }
    }

    /// Energy spent.
    pub fn energy(&self) -> Energy {
        match self {
            ProbeOutcome::Done { energy, .. } | ProbeOutcome::Aborted { energy, .. } => *energy,
        }
    }
}

/// Aggregate engine statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProbeStats {
    /// Probes completed.
    pub completed: u64,
    /// Probes aborted to software.
    pub aborted: u64,
    /// SG-DRAM reads issued.
    pub sg_reads: u64,
}

/// Utilization window for the queueing model (1 ms).
const WINDOW: SimTime = SimTime(1_000_000_000);
/// Utilization clamp: keeps delays finite under overload.
const RHO_MAX: f64 = 0.97;

/// The pipelined tree-probe unit.
#[derive(Debug, Clone)]
pub struct ProbeEngine {
    cfg: ProbeEngineConfig,
    unit: FpgaUnit,
    window_start: SimTime,
    /// Busy-time integrals within the current window.
    ring_busy: SimTime,
    stage_busy: SimTime,
    stats: ProbeStats,
}

impl ProbeEngine {
    /// Place the engine on a fabric.
    pub fn place(fabric: &mut FpgaFabric, cfg: ProbeEngineConfig) -> Result<Self, OutOfArea> {
        let unit = fabric.place(
            "tree-probe",
            cfg.cycles_per_level,
            cfg.max_outstanding,
            cfg.energy_per_level,
            cfg.area_slices,
        )?;
        Ok(ProbeEngine {
            cfg,
            unit,
            window_start: SimTime::ZERO,
            ring_busy: SimTime::ZERO,
            stage_busy: SimTime::ZERO,
            stats: ProbeStats::default(),
        })
    }

    /// Place with the default (paper) configuration.
    pub fn hc2(fabric: &mut FpgaFabric) -> Result<Self, OutOfArea> {
        Self::place(fabric, ProbeEngineConfig::default())
    }

    /// Engine configuration.
    pub fn config(&self) -> &ProbeEngineConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> ProbeStats {
        self.stats
    }

    /// Dependent-chain latency of a full probe.
    pub fn chain_latency(&self, levels: u32, compare_cost_factor: u32, sg: &SgDram) -> SimTime {
        let rounds_per_level = (self.cfg.rounds_per_level * compare_cost_factor.max(1)) as u64;
        let level_time =
            sg.latency() * rounds_per_level + self.unit.clock_period() * self.cfg.cycles_per_level;
        level_time * levels as u64
    }

    /// Completion-stage occupancy of a full probe.
    fn stage_time(&self, levels: u32, compare_cost_factor: u32) -> SimTime {
        let rounds =
            (self.cfg.rounds_per_level * compare_cost_factor.max(1)) as u64 * levels as u64;
        self.unit.clock_period() * (self.cfg.round_stage_cycles * rounds)
    }

    /// Steady-state probe capacity for the given probe shape: the binding
    /// minimum of context-limited (Little's law) and stage-limited rates.
    pub fn capacity_per_sec(&self, levels: u32, compare_cost_factor: u32, sg: &SgDram) -> f64 {
        let chain = self
            .chain_latency(levels, compare_cost_factor, sg)
            .as_secs();
        let stage = self.stage_time(levels, compare_cost_factor).as_secs();
        (self.cfg.max_outstanding as f64 / chain).min(1.0 / stage)
    }

    /// Queueing delay for a probe arriving at `arrive` needing `chain` and
    /// `stage` service: windowed-utilization M/D/1-style wait on the
    /// binding resource.
    fn queueing_delay(&mut self, arrive: SimTime, chain: SimTime, stage: SimTime) -> SimTime {
        if arrive > self.window_start + WINDOW {
            self.window_start = arrive;
            self.ring_busy = SimTime::ZERO;
            self.stage_busy = SimTime::ZERO;
        }
        self.ring_busy += chain;
        self.stage_busy += stage;
        let span = (arrive.saturating_sub(self.window_start))
            .max(chain)
            .as_secs();
        let rho_ring = self.ring_busy.as_secs() / (span * self.cfg.max_outstanding as f64);
        let rho_stage = self.stage_busy.as_secs() / span;
        let (rho, service) = if rho_stage >= rho_ring {
            (rho_stage, stage)
        } else {
            (rho_ring, chain / self.cfg.max_outstanding as u64)
        };
        let rho = rho.min(RHO_MAX);
        service * (rho / (2.0 * (1.0 - rho)))
    }

    fn traverse(
        &mut self,
        arrive: SimTime,
        levels: u32,
        sg: &mut SgDram,
        compare_cost_factor: u32,
    ) -> (SimTime, Energy) {
        let rounds =
            (self.cfg.rounds_per_level * compare_cost_factor.max(1)) as u64 * levels as u64;
        let total_reads = rounds * self.cfg.accesses_per_round as u64;
        let mut energy = sg.charge_accesses(total_reads);
        self.stats.sg_reads += total_reads;
        for _ in 0..levels {
            let (_, e) = self.unit.submit(arrive);
            energy += e;
        }
        let chain = self.chain_latency(levels, compare_cost_factor, sg);
        let stage = self.stage_time(levels, compare_cost_factor);
        let wait = self.queueing_delay(arrive, chain, stage);
        (arrive + wait + chain, energy)
    }

    /// Probe a tree of height `levels` whose nodes are all FPGA-resident.
    /// `compare_cost_factor` is 1 for integer keys, or the key's 8-byte
    /// chunk count for string keys.
    pub fn submit(
        &mut self,
        arrive: SimTime,
        levels: u32,
        compare_cost_factor: u32,
        sg: &mut SgDram,
    ) -> ProbeOutcome {
        let (done, energy) = self.traverse(arrive, levels, sg, compare_cost_factor);
        self.stats.completed += 1;
        ProbeOutcome::Done { at: done, energy }
    }

    /// Probe that discovers a non-resident node at `miss_level` (1-based)
    /// and aborts — the §5.3/§5.6 software-fallback path.
    pub fn submit_with_miss(
        &mut self,
        arrive: SimTime,
        miss_level: u32,
        compare_cost_factor: u32,
        sg: &mut SgDram,
    ) -> ProbeOutcome {
        assert!(miss_level >= 1);
        // Traverse the resident prefix, then one read that detects the miss.
        let (mut t, mut energy) = self.traverse(arrive, miss_level - 1, sg, compare_cost_factor);
        energy += sg.charge_accesses(1);
        t += sg.latency();
        self.stats.sg_reads += 1;
        self.stats.aborted += 1;
        ProbeOutcome::Aborted {
            at_level: miss_level,
            at: t,
            energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ProbeEngine, SgDram) {
        let mut fabric = FpgaFabric::hc2();
        (ProbeEngine::hc2(&mut fabric).unwrap(), SgDram::hc2())
    }

    #[test]
    fn single_probe_latency_is_the_dependent_chain() {
        let (mut eng, mut sg) = setup();
        let out = eng.submit(SimTime::ZERO, 3, 1, &mut sg);
        let ProbeOutcome::Done { at, .. } = out else {
            panic!("expected done")
        };
        // 3 levels * 3 dependent 400ns rounds + 3 * 4 cycles * 5ns, plus a
        // small first-probe queueing term.
        let chain_ns = 3.0 * 3.0 * 400.0 + 3.0 * 4.0 * 5.0;
        assert!(
            at.as_ns() >= chain_ns && at.as_ns() < chain_ns * 1.2,
            "at={at} chain={chain_ns}ns"
        );
    }

    #[test]
    fn capacity_flattens_at_a_dozen_outstanding() {
        // §5.3's claim: ~a dozen in-flight probes saturate the unit.
        let sg = SgDram::hc2();
        let mut caps = Vec::new();
        for outstanding in [1usize, 2, 4, 8, 12, 16, 24, 32] {
            let mut fabric = FpgaFabric::hc2();
            let eng = ProbeEngine::place(
                &mut fabric,
                ProbeEngineConfig {
                    max_outstanding: outstanding,
                    ..Default::default()
                },
            )
            .unwrap();
            caps.push(eng.capacity_per_sec(3, 1, &sg));
        }
        // Linear up to 12, then stage-bound flat.
        assert!((caps[1] / caps[0] - 2.0).abs() < 0.01);
        assert!((caps[4] / caps[0] - 12.0).abs() < 0.1);
        assert!(
            (caps[7] - caps[5]).abs() / caps[5] < 0.01,
            "beyond the stage limit capacity must flatten: {caps:?}"
        );
        assert!(caps[5] < 16.0 * caps[0], "16 contexts can't reach 16x");
    }

    #[test]
    fn paced_load_below_capacity_is_stable() {
        let (mut eng, mut sg) = setup();
        let cap = eng.capacity_per_sec(3, 1, &sg);
        let inter = SimTime::from_secs(1.0 / (0.8 * cap));
        let chain = eng.chain_latency(3, 1, &sg);
        let mut at = SimTime::ZERO;
        let mut worst = SimTime::ZERO;
        for _ in 0..20_000 {
            let out = eng.submit(at, 3, 1, &mut sg);
            worst = worst.max(out.time() - at);
            at += inter;
        }
        assert!(
            worst < chain * 8u64,
            "at 80% load latency must stay bounded: worst={worst} chain={chain}"
        );
    }

    #[test]
    fn overload_saturates_latency_without_divergence() {
        let (mut eng, mut sg) = setup();
        let cap = eng.capacity_per_sec(3, 1, &sg);
        let inter = SimTime::from_secs(1.0 / (3.0 * cap)); // 3x overload
        let chain = eng.chain_latency(3, 1, &sg);
        let mut at = SimTime::ZERO;
        for _ in 0..10_000 {
            let out = eng.submit(at, 3, 1, &mut sg);
            assert!(out.time() > at, "completion after arrival");
            // Delay is large but clamped (RHO_MAX), not divergent.
            assert!(out.time() - at < chain * 40u64);
            at += inter;
        }
    }

    #[test]
    fn out_of_order_submissions_do_not_ratchet() {
        // The engine submits in functional order: a late-timestamp probe
        // followed by early ones must not inflate the early ones' latency.
        let (mut eng, mut sg) = setup();
        let chain = eng.chain_latency(2, 1, &sg);
        eng.submit(SimTime::from_ms(5.0), 2, 1, &mut sg); // far future
        let out = eng.submit(SimTime::from_us(1.0), 2, 1, &mut sg);
        assert!(
            out.time() - SimTime::from_us(1.0) < chain * 3u64,
            "early probe must not queue behind the future one"
        );
    }

    #[test]
    fn string_keys_cost_proportionally_more() {
        let (eng, sg) = setup();
        let int = eng.chain_latency(3, 1, &sg);
        let str3 = eng.chain_latency(3, 3, &sg);
        assert!(str3.as_ns() > 2.5 * int.as_ns());
    }

    #[test]
    fn abort_spends_partial_energy_and_counts() {
        let (mut eng, mut sg) = setup();
        let full = eng.submit(SimTime::ZERO, 4, 1, &mut sg);
        let (mut eng2, mut sg2) = setup();
        let aborted = eng2.submit_with_miss(SimTime::ZERO, 2, 1, &mut sg2);
        assert!(aborted.energy().as_nj() < full.energy().as_nj());
        assert!(aborted.time() < full.time());
        let ProbeOutcome::Aborted { at_level, .. } = aborted else {
            panic!("expected abort")
        };
        assert_eq!(at_level, 2);
        assert_eq!(eng2.stats().aborted, 1);
        assert_eq!(eng2.stats().completed, 0);
    }

    #[test]
    fn probe_energy_is_far_below_software() {
        // Cross-check the headline §1 claim at the unit level: a 3-level
        // probe costs 72 SG accesses * 2nJ + 3 levels * 0.2nJ ≈ 145nJ,
        // versus a software probe's ~150 instructions * 2nJ + cache/DRAM
        // traffic ≈ 400nJ (see EXPERIMENTS.md E4 for the measured ratio).
        let (mut eng, mut sg) = setup();
        let out = eng.submit(SimTime::ZERO, 3, 1, &mut sg);
        let hw_nj = out.energy().as_nj();
        assert!(hw_nj < 160.0, "hw={hw_nj}nJ");
    }

    #[test]
    fn stats_track_sg_reads() {
        let (mut eng, mut sg) = setup();
        eng.submit(SimTime::ZERO, 2, 1, &mut sg);
        assert_eq!(eng.stats().sg_reads, 48); // 2 levels * 3 rounds * 8 words
    }
}
