//! Key types for the B+tree.
//!
//! §5.3 commits to "a generic hardware tree probe engine that can handle
//! both integer and variable-length string keys" — so the tree is generic
//! over [`TreeKey`], with [`i64`] and [`StrKey`] as the two paper-mandated
//! instances.

/// A type usable as a B+tree key.
///
/// Beyond ordering, keys report their encoded size (for node-space and
/// transfer-byte accounting) and a comparison *cost* in machine-word
/// operations, which feeds the "load-compare-branch triplet" instruction
/// model of §5.3: integer compares are one operation, string compares cost
/// one per 8-byte chunk.
pub trait TreeKey: Ord + Clone {
    /// `Some(n)` when every key of this type encodes to exactly `n` bytes.
    /// Lets byte accounting (`BTree::approx_bytes`) run per-node instead of
    /// per-key; the value must agree with [`TreeKey::encoded_len`].
    const FIXED_ENCODED_LEN: Option<usize> = None;

    /// Encoded size in bytes when stored in a node.
    fn encoded_len(&self) -> usize;

    /// Cost of one comparison against another key, in word operations.
    fn compare_cost(&self) -> u32;
}

impl TreeKey for i64 {
    const FIXED_ENCODED_LEN: Option<usize> = Some(8);

    fn encoded_len(&self) -> usize {
        8
    }

    fn compare_cost(&self) -> u32 {
        1
    }
}

impl TreeKey for u64 {
    const FIXED_ENCODED_LEN: Option<usize> = Some(8);

    fn encoded_len(&self) -> usize {
        8
    }

    fn compare_cost(&self) -> u32 {
        1
    }
}

/// A variable-length byte-string key with lexicographic order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StrKey(pub Vec<u8>);

impl StrKey {
    /// Construct from anything byte-like.
    pub fn new(bytes: impl Into<Vec<u8>>) -> Self {
        StrKey(bytes.into())
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

impl From<&str> for StrKey {
    fn from(s: &str) -> Self {
        StrKey(s.as_bytes().to_vec())
    }
}

impl From<&[u8]> for StrKey {
    fn from(b: &[u8]) -> Self {
        StrKey(b.to_vec())
    }
}

impl TreeKey for StrKey {
    fn encoded_len(&self) -> usize {
        // 2-byte length prefix plus payload.
        2 + self.0.len()
    }

    fn compare_cost(&self) -> u32 {
        // One word op per 8-byte chunk, at least one.
        (self.0.len() as u32).div_ceil(8).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_keys_are_cheap() {
        assert_eq!(5i64.encoded_len(), 8);
        assert_eq!(5i64.compare_cost(), 1);
    }

    #[test]
    fn str_keys_order_lexicographically() {
        let a = StrKey::from("apple");
        let b = StrKey::from("banana");
        let ab = StrKey::from("apple!");
        assert!(a < b);
        assert!(a < ab);
        assert_eq!(a, StrKey::new(b"apple".to_vec()));
    }

    #[test]
    fn str_key_costs_scale_with_length() {
        assert_eq!(StrKey::from("x").compare_cost(), 1);
        assert_eq!(StrKey::from("12345678").compare_cost(), 1);
        assert_eq!(StrKey::from("123456789").compare_cost(), 2);
        assert_eq!(StrKey::new(vec![0u8; 64]).compare_cost(), 8);
        assert_eq!(StrKey::from("abc").encoded_len(), 5);
        assert_eq!(StrKey::default().compare_cost(), 1);
    }
}
