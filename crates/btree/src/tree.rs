//! The B+tree: sorted key → u64 map with linked leaves.
//!
//! This is the index structure §5.3 puts at the heart of OLTP ("index-bound,
//! spending in some cases 40 % or more of total transaction time traversing
//! various index structures"). Design follows the paper's division of labor:
//!
//! * probes are concurrency-free — in DORA, "virtually all concurrency
//!   control issues are resolved before a request ever reaches the tree" —
//!   so the tree is a plain single-writer structure;
//! * "complex operations, such as space allocation, inode splits, and index
//!   reorganization, are handled in software": splits/merges/borrows are
//!   implemented here and *reported* in the [`Footprint`] so the engine can
//!   price them on the CPU even when probes run on the FPGA;
//! * high branching factors keep inner levels memory-resident.
//!
//! Nodes live in an arena (`Vec<Node<K>>` + free list), which doubles as the
//! model of the FPGA-side index memory for the probe engine.

use crate::key::TreeKey;

/// Sentinel node id.
pub const NIL: u32 = u32::MAX;

/// Cost/shape footprint of one tree operation, consumed by the engine's
/// cost model (§5.3's "load-compare-branch triplets").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Inner nodes visited.
    pub inner_visited: u32,
    /// Leaf nodes visited.
    pub leaves_visited: u32,
    /// Key comparisons performed (binary search steps × compare cost).
    pub comparisons: u32,
    /// Node splits performed (software SMOs).
    pub splits: u32,
    /// Node merges performed.
    pub merges: u32,
    /// Borrow/rotation rebalances performed.
    pub borrows: u32,
}

impl Footprint {
    /// Total nodes visited (≈ dependent memory accesses on the probe path).
    pub fn nodes_visited(&self) -> u32 {
        self.inner_visited + self.leaves_visited
    }

    /// Did this operation perform any structural modification?
    pub fn had_smo(&self) -> bool {
        self.splits + self.merges + self.borrows > 0
    }

    /// Merge another footprint into this one.
    pub fn merge_from(&mut self, o: Footprint) {
        self.inner_visited += o.inner_visited;
        self.leaves_visited += o.leaves_visited;
        self.comparisons += o.comparisons;
        self.splits += o.splits;
        self.merges += o.merges;
        self.borrows += o.borrows;
    }
}

#[derive(Debug, Clone)]
enum Node<K> {
    Inner {
        keys: Vec<K>,
        children: Vec<u32>,
    },
    Leaf {
        keys: Vec<K>,
        vals: Vec<u64>,
        next: u32,
    },
    /// Free-list entry; payload is the next free id.
    Free(u32),
}

enum Ins<K> {
    Done(Option<u64>),
    Split {
        sep: K,
        right: u32,
        old: Option<u64>,
    },
}

/// A B+tree mapping keys to `u64` payloads (packed `RecordId`s from
/// `bionic-storage`, or inline values).
///
/// ```
/// use bionic_btree::BTree;
///
/// let mut index = BTree::new();
/// index.insert(42i64, 4200);
/// let (value, footprint) = index.get(&42);
/// assert_eq!(value, Some(4200));
/// assert_eq!(footprint.nodes_visited(), 1); // root leaf only
/// index.check_invariants().unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct BTree<K> {
    nodes: Vec<Node<K>>,
    free_head: u32,
    root: u32,
    height: u32,
    order: usize,
    len: usize,
    /// Structural mutation counter: bumped by every `&mut self` entry
    /// point, so callers can cache derived quantities (e.g. byte totals)
    /// and recompute only when the tree has actually changed.
    version: u64,
}

fn bsearch_steps(n: usize) -> u32 {
    (usize::BITS - n.leading_zeros()).max(1)
}

impl<K: TreeKey> BTree<K> {
    /// Create an empty tree. `order` is the maximum keys per node (≥ 4).
    /// §5.3 motivates large orders ("branching factors of several hundred to
    /// a few thousand"); the default constructor uses 256.
    pub fn with_order(order: usize) -> Self {
        assert!(order >= 4, "order must be >= 4");
        let mut t = BTree {
            nodes: Vec::new(),
            free_head: NIL,
            root: NIL,
            height: 1,
            order,
            len: 0,
            version: 0,
        };
        t.root = t.alloc(Node::Leaf {
            keys: Vec::new(),
            vals: Vec::new(),
            next: NIL,
        });
        t
    }

    /// An empty tree with the default order of 256.
    pub fn new() -> Self {
        Self::with_order(256)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 = the root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Maximum keys per node.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Number of allocated (live) nodes.
    pub fn node_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| !matches!(n, Node::Free(_)))
            .count()
    }

    /// Approximate resident bytes of the index (key bytes + payload +
    /// child pointers) — what must fit in FPGA memory for hardware probes.
    pub fn approx_bytes(&self) -> usize {
        let key_bytes = |keys: &[K]| match K::FIXED_ENCODED_LEN {
            Some(n) => keys.len() * n,
            None => keys.iter().map(TreeKey::encoded_len).sum::<usize>(),
        };
        let mut total = 0;
        for n in &self.nodes {
            total += match n {
                Node::Inner { keys, children } => key_bytes(keys) + children.len() * 4,
                Node::Leaf { keys, vals, .. } => key_bytes(keys) + vals.len() * 8 + 4,
                Node::Free(_) => 0,
            };
        }
        total
    }

    /// Structural mutation counter (see the field docs): equal values
    /// guarantee the tree has not changed since the counter was read.
    pub fn version(&self) -> u64 {
        self.version
    }

    fn min_keys(&self) -> usize {
        self.order / 2
    }

    fn alloc(&mut self, node: Node<K>) -> u32 {
        if self.free_head != NIL {
            let id = self.free_head;
            match self.nodes[id as usize] {
                Node::Free(next) => self.free_head = next,
                _ => unreachable!("free list corrupted"),
            }
            self.nodes[id as usize] = node;
            id
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn dealloc(&mut self, id: u32) {
        self.nodes[id as usize] = Node::Free(self.free_head);
        self.free_head = id;
    }

    /// Index of the child to descend into: equal keys go right.
    fn locate_child(keys: &[K], k: &K) -> usize {
        keys.partition_point(|x| x <= k)
    }

    fn compare_cost_of(keys: &[K], k: &K) -> u32 {
        bsearch_steps(keys.len()) * k.compare_cost()
    }

    /// Point lookup.
    pub fn get(&self, k: &K) -> (Option<u64>, Footprint) {
        let mut fp = Footprint::default();
        let mut id = self.root;
        loop {
            match &self.nodes[id as usize] {
                Node::Inner { keys, children } => {
                    fp.inner_visited += 1;
                    fp.comparisons += Self::compare_cost_of(keys, k);
                    id = children[Self::locate_child(keys, k)];
                }
                Node::Leaf { keys, vals, .. } => {
                    fp.leaves_visited += 1;
                    fp.comparisons += Self::compare_cost_of(keys, k);
                    let v = keys.binary_search(k).ok().map(|i| vals[i]);
                    return (v, fp);
                }
                Node::Free(_) => unreachable!("descended into free node"),
            }
        }
    }

    /// Insert or replace; returns the previous value if any.
    pub fn insert(&mut self, k: K, v: u64) -> (Option<u64>, Footprint) {
        self.version += 1;
        let mut fp = Footprint::default();
        let root = self.root;
        match self.insert_rec(root, k, v, &mut fp) {
            Ins::Done(old) => {
                if old.is_none() {
                    self.len += 1;
                }
                (old, fp)
            }
            Ins::Split { sep, right, old } => {
                let new_root = self.alloc(Node::Inner {
                    keys: vec![sep],
                    children: vec![self.root, right],
                });
                self.root = new_root;
                self.height += 1;
                if old.is_none() {
                    self.len += 1;
                }
                (old, fp)
            }
        }
    }

    fn insert_rec(&mut self, id: u32, k: K, v: u64, fp: &mut Footprint) -> Ins<K> {
        let inner_step = match &self.nodes[id as usize] {
            Node::Inner { keys, children } => {
                fp.inner_visited += 1;
                fp.comparisons += Self::compare_cost_of(keys, &k);
                let idx = Self::locate_child(keys, &k);
                Some((idx, children[idx]))
            }
            Node::Leaf { keys, .. } => {
                fp.leaves_visited += 1;
                fp.comparisons += Self::compare_cost_of(keys, &k);
                None
            }
            Node::Free(_) => unreachable!("descended into free node"),
        };

        match inner_step {
            None => {
                // Leaf insert.
                let order = self.order;
                let (old, needs_split) = {
                    let Node::Leaf { keys, vals, .. } = &mut self.nodes[id as usize] else {
                        unreachable!()
                    };
                    let old = match keys.binary_search(&k) {
                        Ok(i) => Some(std::mem::replace(&mut vals[i], v)),
                        Err(i) => {
                            keys.insert(i, k);
                            vals.insert(i, v);
                            None
                        }
                    };
                    (old, keys.len() > order)
                };
                if !needs_split {
                    return Ins::Done(old);
                }
                fp.splits += 1;
                let (sep, right) = self.split_leaf(id);
                Ins::Split { sep, right, old }
            }
            Some((idx, child)) => match self.insert_rec(child, k, v, fp) {
                Ins::Done(old) => Ins::Done(old),
                Ins::Split { sep, right, old } => {
                    let order = self.order;
                    let needs_split = {
                        let Node::Inner { keys, children } = &mut self.nodes[id as usize] else {
                            unreachable!()
                        };
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        keys.len() > order
                    };
                    if !needs_split {
                        return Ins::Done(old);
                    }
                    fp.splits += 1;
                    let (sep_up, right_id) = self.split_inner(id);
                    Ins::Split {
                        sep: sep_up,
                        right: right_id,
                        old,
                    }
                }
            },
        }
    }

    fn split_leaf(&mut self, id: u32) -> (K, u32) {
        let (rkeys, rvals, old_next) = {
            let Node::Leaf { keys, vals, next } = &mut self.nodes[id as usize] else {
                unreachable!()
            };
            let mid = keys.len() / 2;
            (keys.split_off(mid), vals.split_off(mid), *next)
        };
        let sep = rkeys[0].clone();
        let right = self.alloc(Node::Leaf {
            keys: rkeys,
            vals: rvals,
            next: old_next,
        });
        let Node::Leaf { next, .. } = &mut self.nodes[id as usize] else {
            unreachable!()
        };
        *next = right;
        (sep, right)
    }

    fn split_inner(&mut self, id: u32) -> (K, u32) {
        let (sep, rkeys, rchildren) = {
            let Node::Inner { keys, children } = &mut self.nodes[id as usize] else {
                unreachable!()
            };
            let mid = keys.len() / 2;
            let rkeys = keys.split_off(mid + 1);
            let sep = keys.pop().expect("inner split of tiny node");
            let rchildren = children.split_off(mid + 1);
            (sep, rkeys, rchildren)
        };
        let right = self.alloc(Node::Inner {
            keys: rkeys,
            children: rchildren,
        });
        (sep, right)
    }

    /// Remove a key; returns its value if present.
    pub fn remove(&mut self, k: &K) -> (Option<u64>, Footprint) {
        self.version += 1;
        let mut fp = Footprint::default();
        let root = self.root;
        let (old, _under) = self.remove_rec(root, k, &mut fp);
        if old.is_some() {
            self.len -= 1;
        }
        // Collapse the root if it became a pass-through inner node.
        if let Node::Inner { keys, children } = &self.nodes[self.root as usize] {
            if keys.is_empty() {
                let only = children[0];
                let old_root = self.root;
                self.root = only;
                self.dealloc(old_root);
                self.height -= 1;
            }
        }
        (old, fp)
    }

    fn remove_rec(&mut self, id: u32, k: &K, fp: &mut Footprint) -> (Option<u64>, bool) {
        let inner_step = match &self.nodes[id as usize] {
            Node::Inner { keys, children } => {
                fp.inner_visited += 1;
                fp.comparisons += Self::compare_cost_of(keys, k);
                let idx = Self::locate_child(keys, k);
                Some((idx, children[idx]))
            }
            Node::Leaf { keys, .. } => {
                fp.leaves_visited += 1;
                fp.comparisons += Self::compare_cost_of(keys, k);
                None
            }
            Node::Free(_) => unreachable!("descended into free node"),
        };

        match inner_step {
            None => {
                let min = self.min_keys();
                let is_root = id == self.root;
                let Node::Leaf { keys, vals, .. } = &mut self.nodes[id as usize] else {
                    unreachable!()
                };
                match keys.binary_search(k) {
                    Ok(i) => {
                        keys.remove(i);
                        let v = vals.remove(i);
                        (Some(v), !is_root && keys.len() < min)
                    }
                    Err(_) => (None, false),
                }
            }
            Some((idx, child)) => {
                let (old, under) = self.remove_rec(child, k, fp);
                if under {
                    self.fix_underflow(id, idx, fp);
                }
                let min = self.min_keys();
                let is_root = id == self.root;
                let Node::Inner { keys, .. } = &self.nodes[id as usize] else {
                    unreachable!()
                };
                (old, !is_root && keys.len() < min)
            }
        }
    }

    /// Take a node out of the arena for two-node surgery.
    fn take(&mut self, id: u32) -> Node<K> {
        std::mem::replace(&mut self.nodes[id as usize], Node::Free(NIL))
    }

    fn put(&mut self, id: u32, node: Node<K>) {
        self.nodes[id as usize] = node;
    }

    /// Repair an underflowing `children[idx]` of inner node `parent`.
    fn fix_underflow(&mut self, parent: u32, idx: usize, fp: &mut Footprint) {
        let (left_sib, right_sib, child) = {
            let Node::Inner { children, .. } = &self.nodes[parent as usize] else {
                unreachable!()
            };
            let left = if idx > 0 {
                Some(children[idx - 1])
            } else {
                None
            };
            let right = children.get(idx + 1).copied();
            (left, right, children[idx])
        };
        let min = self.min_keys();

        let sib_len = |n: &Node<K>| match n {
            Node::Inner { keys, .. } | Node::Leaf { keys, .. } => keys.len(),
            Node::Free(_) => 0,
        };

        // Prefer borrowing (cheap) over merging.
        if let Some(l) = left_sib {
            if sib_len(&self.nodes[l as usize]) > min {
                self.borrow_from_left(parent, idx, l, child);
                fp.borrows += 1;
                return;
            }
        }
        if let Some(r) = right_sib {
            if sib_len(&self.nodes[r as usize]) > min {
                self.borrow_from_right(parent, idx, child, r);
                fp.borrows += 1;
                return;
            }
        }
        if let Some(l) = left_sib {
            self.merge_nodes(parent, idx - 1, l, child);
            fp.merges += 1;
        } else if let Some(r) = right_sib {
            self.merge_nodes(parent, idx, child, r);
            fp.merges += 1;
        }
    }

    fn borrow_from_left(&mut self, parent: u32, idx: usize, left: u32, child: u32) {
        let mut lnode = self.take(left);
        let mut cnode = self.take(child);
        match (&mut lnode, &mut cnode) {
            (
                Node::Leaf {
                    keys: lk, vals: lv, ..
                },
                Node::Leaf {
                    keys: ck, vals: cv, ..
                },
            ) => {
                let k = lk.pop().expect("borrow from empty left leaf");
                let v = lv.pop().expect("borrow from empty left leaf");
                ck.insert(0, k);
                cv.insert(0, v);
                let new_sep = ck[0].clone();
                let Node::Inner { keys, .. } = &mut self.nodes[parent as usize] else {
                    unreachable!()
                };
                keys[idx - 1] = new_sep;
            }
            (
                Node::Inner {
                    keys: lk,
                    children: lc,
                },
                Node::Inner {
                    keys: ck,
                    children: cc,
                },
            ) => {
                let Node::Inner { keys, .. } = &mut self.nodes[parent as usize] else {
                    unreachable!()
                };
                let sep = std::mem::replace(
                    &mut keys[idx - 1],
                    lk.pop().expect("borrow from empty left inner"),
                );
                ck.insert(0, sep);
                cc.insert(0, lc.pop().expect("borrow from empty left inner"));
            }
            _ => unreachable!("sibling type mismatch"),
        }
        self.put(left, lnode);
        self.put(child, cnode);
    }

    fn borrow_from_right(&mut self, parent: u32, idx: usize, child: u32, right: u32) {
        let mut cnode = self.take(child);
        let mut rnode = self.take(right);
        match (&mut cnode, &mut rnode) {
            (
                Node::Leaf {
                    keys: ck, vals: cv, ..
                },
                Node::Leaf {
                    keys: rk, vals: rv, ..
                },
            ) => {
                ck.push(rk.remove(0));
                cv.push(rv.remove(0));
                let new_sep = rk[0].clone();
                let Node::Inner { keys, .. } = &mut self.nodes[parent as usize] else {
                    unreachable!()
                };
                keys[idx] = new_sep;
            }
            (
                Node::Inner {
                    keys: ck,
                    children: cc,
                },
                Node::Inner {
                    keys: rk,
                    children: rc,
                },
            ) => {
                let Node::Inner { keys, .. } = &mut self.nodes[parent as usize] else {
                    unreachable!()
                };
                let sep = std::mem::replace(&mut keys[idx], rk.remove(0));
                ck.push(sep);
                cc.push(rc.remove(0));
            }
            _ => unreachable!("sibling type mismatch"),
        }
        self.put(child, cnode);
        self.put(right, rnode);
    }

    /// Merge `children[li+1]` into `children[li]`, removing separator `li`.
    fn merge_nodes(&mut self, parent: u32, li: usize, left: u32, right: u32) {
        let rnode = self.take(right);
        let sep = {
            let Node::Inner { keys, children } = &mut self.nodes[parent as usize] else {
                unreachable!()
            };
            children.remove(li + 1);
            keys.remove(li)
        };
        let mut lnode = self.take(left);
        match (&mut lnode, rnode) {
            (
                Node::Leaf {
                    keys: lk,
                    vals: lv,
                    next: ln,
                },
                Node::Leaf {
                    keys: rk,
                    vals: rv,
                    next: rn,
                },
            ) => {
                lk.extend(rk);
                lv.extend(rv);
                *ln = rn;
            }
            (
                Node::Inner {
                    keys: lk,
                    children: lc,
                },
                Node::Inner {
                    keys: rk,
                    children: rc,
                },
            ) => {
                lk.push(sep);
                lk.extend(rk);
                lc.extend(rc);
            }
            _ => unreachable!("sibling type mismatch"),
        }
        self.put(left, lnode);
        self.dealloc(right);
    }

    /// Batched point lookups in the style of PALM \[12\] — the "complex
    /// measure" §5.3 says software needs to hide probe latency. Keys are
    /// processed in sorted order and descents share their common path
    /// prefix, so n probes of nearby keys touch far fewer nodes than n
    /// independent [`BTree::get`] calls.
    ///
    /// Returns per-key results in the order of the (sorted, deduplicated)
    /// input, plus one aggregate footprint. The slice is sorted in place;
    /// duplicates are skipped during descent (equal keys always route to
    /// the same leaf) so no reallocation is needed.
    pub fn batch_get(&self, keys: &mut [K]) -> (Vec<(K, Option<u64>)>, Footprint) {
        keys.sort();
        let mut fp = Footprint::default();
        let mut out = Vec::with_capacity(keys.len());
        if keys.is_empty() {
            return (out, fp);
        }
        self.batch_rec(self.root, keys, &mut out, &mut fp);
        (out, fp)
    }

    /// [`BTree::batch_get`] without materializing the results: same sort,
    /// same descent, and an identical [`Footprint`] — for callers (the PALM
    /// batch planner) that only price the shared descent. `sort_unstable`
    /// is safe here because equal keys are interchangeable.
    pub fn batch_footprint(&self, keys: &mut [K]) -> Footprint {
        keys.sort_unstable();
        let mut fp = Footprint::default();
        if keys.is_empty() {
            return fp;
        }
        self.batch_fp_rec(self.root, keys, &mut fp);
        fp
    }

    fn batch_fp_rec(&self, id: u32, keys: &[K], fp: &mut Footprint) {
        match &self.nodes[id as usize] {
            Node::Leaf { keys: lk, .. } => {
                fp.leaves_visited += 1;
                for (i, k) in keys.iter().enumerate() {
                    if i > 0 && keys[i - 1] == *k {
                        continue;
                    }
                    fp.comparisons += Self::compare_cost_of(lk, k);
                }
            }
            Node::Inner { keys: ik, children } => {
                fp.inner_visited += 1;
                let mut start = 0usize;
                while start < keys.len() {
                    fp.comparisons += Self::compare_cost_of(ik, &keys[start]);
                    let child_idx = Self::locate_child(ik, &keys[start]);
                    let end = if child_idx == ik.len() {
                        keys.len()
                    } else {
                        let sep = &ik[child_idx];
                        start + keys[start..].partition_point(|k| k < sep)
                    };
                    self.batch_fp_rec(children[child_idx], &keys[start..end], fp);
                    start = end;
                }
            }
            Node::Free(_) => unreachable!("descended into free node"),
        }
    }

    fn batch_rec(&self, id: u32, keys: &[K], out: &mut Vec<(K, Option<u64>)>, fp: &mut Footprint) {
        match &self.nodes[id as usize] {
            Node::Leaf { keys: lk, vals, .. } => {
                fp.leaves_visited += 1;
                for (i, k) in keys.iter().enumerate() {
                    // Adjacent duplicates (slice arrives sorted) collapse to
                    // one probe, matching the old sort+dedup behavior.
                    if i > 0 && keys[i - 1] == *k {
                        continue;
                    }
                    fp.comparisons += Self::compare_cost_of(lk, k);
                    out.push((k.clone(), lk.binary_search(k).ok().map(|i| vals[i])));
                }
            }
            Node::Inner { keys: ik, children } => {
                fp.inner_visited += 1;
                // Partition the sorted batch across children in one pass.
                let mut start = 0usize;
                while start < keys.len() {
                    fp.comparisons += Self::compare_cost_of(ik, &keys[start]);
                    let child_idx = Self::locate_child(ik, &keys[start]);
                    // All batch keys routed to the same child share it.
                    let end = if child_idx == ik.len() {
                        keys.len()
                    } else {
                        let sep = &ik[child_idx];
                        start + keys[start..].partition_point(|k| k < sep)
                    };
                    self.batch_rec(children[child_idx], &keys[start..end], out, fp);
                    start = end;
                }
            }
            Node::Free(_) => unreachable!("descended into free node"),
        }
    }

    /// Visit entries with `lo <= key < hi` in order. Returns the footprint
    /// (one descent plus the leaf chain walked).
    pub fn range(&self, lo: &K, hi: &K, mut visit: impl FnMut(&K, u64)) -> Footprint {
        let mut fp = Footprint::default();
        if hi <= lo {
            return fp;
        }
        // Descend to the leaf containing lo.
        let mut id = self.root;
        loop {
            match &self.nodes[id as usize] {
                Node::Inner { keys, children } => {
                    fp.inner_visited += 1;
                    fp.comparisons += Self::compare_cost_of(keys, lo);
                    id = children[Self::locate_child(keys, lo)];
                }
                Node::Leaf { .. } => break,
                Node::Free(_) => unreachable!(),
            }
        }
        // Walk the leaf chain.
        loop {
            let Node::Leaf { keys, vals, next } = &self.nodes[id as usize] else {
                unreachable!()
            };
            fp.leaves_visited += 1;
            let start = keys.partition_point(|x| x < lo);
            fp.comparisons += Self::compare_cost_of(keys, lo);
            for i in start..keys.len() {
                if &keys[i] >= hi {
                    return fp;
                }
                visit(&keys[i], vals[i]);
            }
            if *next == NIL {
                return fp;
            }
            id = *next;
        }
    }

    /// Visit all entries in key order.
    pub fn scan_all(&self, mut visit: impl FnMut(&K, u64)) {
        let mut id = self.leftmost_leaf();
        loop {
            let Node::Leaf { keys, vals, next } = &self.nodes[id as usize] else {
                unreachable!()
            };
            for (k, v) in keys.iter().zip(vals) {
                visit(k, *v);
            }
            if *next == NIL {
                return;
            }
            id = *next;
        }
    }

    fn leftmost_leaf(&self) -> u32 {
        let mut id = self.root;
        loop {
            match &self.nodes[id as usize] {
                Node::Inner { children, .. } => id = children[0],
                Node::Leaf { .. } => return id,
                Node::Free(_) => unreachable!(),
            }
        }
    }

    /// Build a tree from sorted, duplicate-free `(key, value)` pairs at the
    /// given leaf fill factor — the bulk path the §5.6 overlay merge uses.
    pub fn bulk_load(pairs: Vec<(K, u64)>, order: usize, fill: f64) -> Self {
        assert!((0.1..=1.0).contains(&fill), "fill factor out of range");
        let mut tree = Self::with_order(order);
        if pairs.is_empty() {
            return tree;
        }
        for w in pairs.windows(2) {
            assert!(w[0].0 < w[1].0, "bulk_load requires sorted unique keys");
        }
        tree.len = pairs.len();
        let per_leaf = ((order as f64 * fill) as usize).clamp(tree.min_keys().max(1), order);

        // Build leaves.
        tree.nodes.clear();
        tree.free_head = NIL;
        let mut leaf_ids: Vec<u32> = Vec::new();
        let mut seps: Vec<K> = Vec::new();
        let chunks: Vec<&[(K, u64)]> = pairs.chunks(per_leaf).collect();
        // Avoid a dangling undersized last leaf violating min occupancy:
        // bulk loads with fill <= (order - min)/order can't underflow except
        // for the final chunk; merge a too-small tail into the previous leaf.
        let mut materialized: Vec<(Vec<K>, Vec<u64>)> = Vec::with_capacity(chunks.len());
        for c in &chunks {
            materialized.push((
                c.iter().map(|(k, _)| k.clone()).collect(),
                c.iter().map(|(_, v)| *v).collect(),
            ));
        }
        if materialized.len() > 1 {
            let last_len = materialized.last().unwrap().0.len();
            if last_len < tree.min_keys() {
                // Combine the undersized tail with its predecessor, then
                // keep one leaf if it fits, else split evenly (both halves
                // are >= (order+1)/2 >= min_keys).
                let (lk, lv) = materialized.pop().unwrap();
                let (mut pk, mut pv) = materialized.pop().unwrap();
                pk.extend(lk);
                pv.extend(lv);
                if pk.len() <= order {
                    materialized.push((pk, pv));
                } else {
                    let half = pk.len() / 2;
                    let rk = pk.split_off(half);
                    let rv = pv.split_off(half);
                    materialized.push((pk, pv));
                    materialized.push((rk, rv));
                }
            }
        }
        for (keys, vals) in materialized {
            if !leaf_ids.is_empty() {
                seps.push(keys[0].clone());
            }
            let id = tree.alloc(Node::Leaf {
                keys,
                vals,
                next: NIL,
            });
            leaf_ids.push(id);
        }
        for w in 0..leaf_ids.len().saturating_sub(1) {
            let next_id = leaf_ids[w + 1];
            let Node::Leaf { next, .. } = &mut tree.nodes[leaf_ids[w] as usize] else {
                unreachable!()
            };
            *next = next_id;
        }

        // Build inner levels bottom-up.
        let mut level_ids = leaf_ids;
        let mut level_seps = seps;
        let mut height = 1;
        while level_ids.len() > 1 {
            height += 1;
            let fanout = per_leaf + 1; // children per inner node
            let mut new_ids = Vec::new();
            let mut new_seps = Vec::new();
            let mut i = 0;
            while i < level_ids.len() {
                let remaining = level_ids.len() - i;
                // Avoid leaving an underflowing tail group: either absorb
                // the whole remainder into one node (a node holds up to
                // order+1 children) or shrink this group so the tail gets
                // at least min_keys+1 children.
                let take_children = if remaining <= fanout {
                    remaining
                } else if remaining - fanout < tree.min_keys() + 1 {
                    if remaining <= order + 1 {
                        remaining
                    } else {
                        remaining - (tree.min_keys() + 1)
                    }
                } else {
                    fanout
                };
                let children: Vec<u32> = level_ids[i..i + take_children].to_vec();
                let keys: Vec<K> = level_seps[i..i + take_children - 1].to_vec();
                if !new_ids.is_empty() {
                    new_seps.push(level_seps[i - 1].clone());
                }
                let id = tree.alloc(Node::Inner { keys, children });
                new_ids.push(id);
                i += take_children;
            }
            // level_seps between groups were consumed positionally: rebuild
            // by noting sep j sits between child j and j+1 of the old level.
            level_ids = new_ids;
            level_seps = new_seps;
        }
        tree.root = level_ids[0];
        tree.height = height;
        tree
    }

    /// Average leaf fill factor (live keys / order, across leaves) — the
    /// fragmentation signal a reorganization policy watches.
    pub fn avg_leaf_fill(&self) -> f64 {
        let mut leaves = 0usize;
        let mut keys = 0usize;
        for n in &self.nodes {
            if let Node::Leaf { keys: k, .. } = n {
                leaves += 1;
                keys += k.len();
            }
        }
        if leaves == 0 {
            0.0
        } else {
            keys as f64 / (leaves * self.order) as f64
        }
    }

    /// Rebuild the tree at the given fill factor — §5.3's "index
    /// reorganization" kept in software. Compacts fragmentation left by
    /// deletes, shrinks height when possible, and restores sequential leaf
    /// layout. O(n); run it from maintenance, not transactions.
    pub fn reorganize(&mut self, fill: f64) {
        let mut pairs = Vec::with_capacity(self.len);
        self.scan_all(|k, v| pairs.push((k.clone(), v)));
        let version = self.version + 1;
        *self = Self::bulk_load(pairs, self.order, fill);
        self.version = version;
    }

    /// Verify every structural invariant; returns a description of the
    /// first violation. Used by unit and property tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut leaf_depths = Vec::new();
        let mut count = 0usize;
        self.check_node(self.root, 1, None, None, &mut leaf_depths, &mut count)?;
        if let Some(&d) = leaf_depths.first() {
            if leaf_depths.iter().any(|&x| x != d) {
                return Err("leaves at differing depths".into());
            }
            if d != self.height {
                return Err(format!("height {} but leaf depth {d}", self.height));
            }
        }
        if count != self.len {
            return Err(format!("len {} but counted {count}", self.len));
        }
        // Leaf chain must visit all entries in strictly ascending order.
        let mut prev: Option<K> = None;
        let mut chain_count = 0usize;
        let mut id = self.leftmost_leaf();
        loop {
            let Node::Leaf { keys, next, .. } = &self.nodes[id as usize] else {
                return Err("leaf chain hit non-leaf".into());
            };
            for k in keys {
                if let Some(p) = &prev {
                    if p >= k {
                        return Err("leaf chain out of order".into());
                    }
                }
                prev = Some(k.clone());
                chain_count += 1;
            }
            if *next == NIL {
                break;
            }
            id = *next;
        }
        if chain_count != self.len {
            return Err(format!("chain count {chain_count} != len {}", self.len));
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn check_node(
        &self,
        id: u32,
        depth: u32,
        lo: Option<&K>,
        hi: Option<&K>,
        leaf_depths: &mut Vec<u32>,
        count: &mut usize,
    ) -> Result<(), String> {
        match &self.nodes[id as usize] {
            Node::Free(_) => Err(format!("node {id} is free but reachable")),
            Node::Leaf { keys, vals, .. } => {
                if keys.len() != vals.len() {
                    return Err("leaf keys/vals length mismatch".into());
                }
                if keys.len() > self.order {
                    return Err("leaf overflow".into());
                }
                if id != self.root && keys.len() < self.min_keys() {
                    return Err(format!(
                        "leaf {id} underflow: {} < {}",
                        keys.len(),
                        self.min_keys()
                    ));
                }
                for w in keys.windows(2) {
                    if w[0] >= w[1] {
                        return Err("leaf keys not strictly sorted".into());
                    }
                }
                if let (Some(lo), Some(first)) = (lo, keys.first()) {
                    if first < lo {
                        return Err("leaf key below separator bound".into());
                    }
                }
                if let (Some(hi), Some(last)) = (hi, keys.last()) {
                    if last >= hi {
                        return Err("leaf key above separator bound".into());
                    }
                }
                leaf_depths.push(depth);
                *count += keys.len();
                Ok(())
            }
            Node::Inner { keys, children } => {
                if children.len() != keys.len() + 1 {
                    return Err("inner fanout mismatch".into());
                }
                if keys.len() > self.order {
                    return Err("inner overflow".into());
                }
                if id != self.root && keys.len() < self.min_keys() {
                    return Err("inner underflow".into());
                }
                if id == self.root && keys.is_empty() {
                    return Err("pass-through root".into());
                }
                for w in keys.windows(2) {
                    if w[0] >= w[1] {
                        return Err("inner keys not strictly sorted".into());
                    }
                }
                for (i, &c) in children.iter().enumerate() {
                    let clo = if i == 0 { lo } else { Some(&keys[i - 1]) };
                    let chi = if i == keys.len() { hi } else { Some(&keys[i]) };
                    self.check_node(c, depth + 1, clo, chi, leaf_depths, count)?;
                }
                Ok(())
            }
        }
    }
}

impl<K: TreeKey> Default for BTree<K> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::StrKey;

    #[test]
    fn empty_tree_lookups() {
        let t: BTree<i64> = BTree::new();
        assert!(t.is_empty());
        assert_eq!(t.get(&5).0, None);
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_get_small() {
        let mut t = BTree::with_order(4);
        for i in 0..20i64 {
            t.insert(i, (i * 10) as u64);
        }
        assert_eq!(t.len(), 20);
        for i in 0..20i64 {
            assert_eq!(t.get(&i).0, Some((i * 10) as u64));
        }
        assert_eq!(t.get(&99).0, None);
        t.check_invariants().unwrap();
    }

    #[test]
    fn replace_returns_old_value() {
        let mut t: BTree<i64> = BTree::new();
        assert_eq!(t.insert(1, 100).0, None);
        assert_eq!(t.insert(1, 200).0, Some(100));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&1).0, Some(200));
    }

    #[test]
    fn grows_in_height_and_stays_balanced() {
        let mut t = BTree::with_order(4);
        for i in 0..1000i64 {
            t.insert(i, i as u64);
            if i % 100 == 0 {
                t.check_invariants().unwrap();
            }
        }
        assert!(t.height() >= 4, "height={}", t.height());
        t.check_invariants().unwrap();
    }

    #[test]
    fn reverse_and_shuffled_insert_orders() {
        let mut rev = BTree::with_order(6);
        for i in (0..500i64).rev() {
            rev.insert(i, i as u64);
        }
        rev.check_invariants().unwrap();

        // Deterministic shuffle via multiplicative hashing.
        let mut shuf = BTree::with_order(6);
        for i in 0..500u64 {
            let k = (i.wrapping_mul(0x9E3779B97F4A7C15) % 500) as i64;
            shuf.insert(k, k as u64);
        }
        shuf.check_invariants().unwrap();
        for i in 0..500i64 {
            assert_eq!(rev.get(&i).0, Some(i as u64));
        }
    }

    #[test]
    fn footprint_depth_matches_height() {
        let mut t = BTree::with_order(4);
        for i in 0..5000i64 {
            t.insert(i, i as u64);
        }
        let (_, fp) = t.get(&2500);
        assert_eq!(fp.nodes_visited(), t.height());
        assert_eq!(fp.leaves_visited, 1);
        assert!(fp.comparisons > 0);
    }

    #[test]
    fn high_order_trees_are_shallow() {
        // §5.3: high branching factors keep trees shallow and in memory.
        let mut t = BTree::with_order(256);
        for i in 0..100_000i64 {
            t.insert(i, i as u64);
        }
        assert!(t.height() <= 3, "height={}", t.height());
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_simple() {
        let mut t = BTree::with_order(4);
        for i in 0..100i64 {
            t.insert(i, i as u64);
        }
        for i in (0..100i64).step_by(2) {
            assert_eq!(t.remove(&i).0, Some(i as u64));
        }
        assert_eq!(t.len(), 50);
        for i in 0..100i64 {
            let expect = if i % 2 == 0 { None } else { Some(i as u64) };
            assert_eq!(t.get(&i).0, expect);
        }
        t.check_invariants().unwrap();
        assert_eq!(t.remove(&0).0, None, "double remove is a no-op");
    }

    #[test]
    fn remove_everything_collapses_to_empty_root() {
        let mut t = BTree::with_order(4);
        for i in 0..300i64 {
            t.insert(i, i as u64);
        }
        for i in 0..300i64 {
            t.remove(&i);
            if i % 37 == 0 {
                t.check_invariants().unwrap();
            }
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_in_random_order_keeps_invariants() {
        let mut t = BTree::with_order(4);
        let n = 1000u64;
        for i in 0..n {
            t.insert(i as i64, i);
        }
        for i in 0..n {
            let k = (i.wrapping_mul(0x2545F4914F6CDD1D) % n) as i64;
            t.remove(&k);
            if i % 101 == 0 {
                t.check_invariants().unwrap();
            }
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn range_scan_inclusive_exclusive() {
        let mut t = BTree::with_order(8);
        for i in 0..100i64 {
            t.insert(i * 2, i as u64); // even keys 0..198
        }
        let mut seen = Vec::new();
        let fp = t.range(&10, &20, |k, _| seen.push(*k));
        assert_eq!(seen, vec![10, 12, 14, 16, 18]);
        assert!(fp.leaves_visited >= 1);
        // Empty and inverted ranges.
        let mut any = false;
        t.range(&11, &12, |_, _| any = true);
        assert!(!any);
        t.range(&20, &10, |_, _| any = true);
        assert!(!any);
    }

    #[test]
    fn range_scan_spans_leaves() {
        let mut t = BTree::with_order(4);
        for i in 0..200i64 {
            t.insert(i, i as u64);
        }
        let mut seen = 0;
        let fp = t.range(&0, &200, |_, _| seen += 1);
        assert_eq!(seen, 200);
        assert!(fp.leaves_visited > 10, "must walk the chain");
    }

    #[test]
    fn scan_all_in_order() {
        let mut t = BTree::with_order(4);
        for i in (0..500i64).rev() {
            t.insert(i, i as u64);
        }
        let mut prev = -1i64;
        let mut n = 0;
        t.scan_all(|k, v| {
            assert!(*k > prev);
            assert_eq!(*k as u64, v);
            prev = *k;
            n += 1;
        });
        assert_eq!(n, 500);
    }

    #[test]
    fn string_keys_work() {
        let mut t: BTree<StrKey> = BTree::with_order(8);
        let words = ["delta", "alpha", "echo", "bravo", "charlie", "foxtrot"];
        for (i, w) in words.iter().enumerate() {
            t.insert(StrKey::from(*w), i as u64);
        }
        assert_eq!(t.get(&StrKey::from("charlie")).0, Some(4));
        assert_eq!(t.get(&StrKey::from("zulu")).0, None);
        let mut order = Vec::new();
        t.scan_all(|k, _| order.push(String::from_utf8(k.0.clone()).unwrap()));
        assert_eq!(
            order,
            vec!["alpha", "bravo", "charlie", "delta", "echo", "foxtrot"]
        );
        t.check_invariants().unwrap();
    }

    #[test]
    fn string_key_comparisons_cost_more() {
        let mut ti: BTree<i64> = BTree::with_order(64);
        let mut ts: BTree<StrKey> = BTree::with_order(64);
        for i in 0..1000i64 {
            ti.insert(i, 0);
            ts.insert(StrKey::new(format!("customer-name-{i:08}").into_bytes()), 0);
        }
        let (_, fi) = ti.get(&500);
        let (_, fs) = ts.get(&StrKey::new(b"customer-name-00000500".to_vec()));
        assert!(fs.comparisons > fi.comparisons);
    }

    #[test]
    fn bulk_load_matches_incremental() {
        let pairs: Vec<(i64, u64)> = (0..10_000).map(|i| (i, (i * 3) as u64)).collect();
        let t = BTree::bulk_load(pairs.clone(), 64, 0.7);
        assert_eq!(t.len(), 10_000);
        t.check_invariants().unwrap();
        for (k, v) in pairs.iter().step_by(97) {
            assert_eq!(t.get(k).0, Some(*v));
        }
        // Range over a chunk matches.
        let mut seen = Vec::new();
        t.range(&100, &110, |k, _| seen.push(*k));
        assert_eq!(seen, (100..110).collect::<Vec<i64>>());
    }

    #[test]
    fn bulk_load_edge_cases() {
        let empty: BTree<i64> = BTree::bulk_load(vec![], 16, 0.7);
        assert!(empty.is_empty());
        empty.check_invariants().unwrap();

        let one = BTree::bulk_load(vec![(5i64, 50)], 16, 0.7);
        assert_eq!(one.get(&5).0, Some(50));
        one.check_invariants().unwrap();

        // Size that leaves a small tail chunk.
        let pairs: Vec<(i64, u64)> = (0..23).map(|i| (i, i as u64)).collect();
        let t = BTree::bulk_load(pairs, 4, 0.75);
        assert_eq!(t.len(), 23);
        t.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "sorted unique")]
    fn bulk_load_rejects_unsorted() {
        BTree::bulk_load(vec![(2i64, 0), (1, 0)], 16, 0.7);
    }

    #[test]
    fn node_count_and_bytes_track_size() {
        let mut t = BTree::with_order(16);
        assert!(t.approx_bytes() < 64);
        for i in 0..1000i64 {
            t.insert(i, i as u64);
        }
        let n1 = t.node_count();
        let b1 = t.approx_bytes();
        assert!(n1 > 60, "n1={n1}");
        assert!(b1 > 16_000, "b1={b1}");
        for i in 0..1000i64 {
            t.remove(&i);
        }
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn batch_get_matches_individual_gets() {
        let mut t = BTree::with_order(16);
        for i in 0..5_000i64 {
            t.insert(i * 2, i as u64);
        }
        let mut keys: Vec<i64> = (0..400).map(|i| i * 17 % 10_000).collect();
        let (results, fp) = t.batch_get(&mut keys);
        assert_eq!(results.len(), keys.len());
        for (k, v) in &results {
            assert_eq!(t.get(k).0, *v, "key {k}");
        }
        // Ordered output.
        for w in results.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        assert!(fp.nodes_visited() > 0);
    }

    #[test]
    fn batch_footprint_matches_batch_get() {
        let mut t = BTree::with_order(16);
        for i in 0..5_000i64 {
            t.insert(i * 2, i as u64);
        }
        for dup_stride in [1i64, 7, 100] {
            let mut keys: Vec<i64> = (0..400).map(|i| i * 17 % dup_stride.max(40)).collect();
            let mut keys2 = keys.clone();
            let (_, fp) = t.batch_get(&mut keys);
            let fp2 = t.batch_footprint(&mut keys2);
            assert_eq!(fp, fp2, "dup_stride={dup_stride}");
            assert_eq!(keys, keys2, "both sort the batch");
        }
        let mut empty: Vec<i64> = vec![];
        assert_eq!(t.batch_footprint(&mut empty), t.batch_get(&mut []).1);
    }

    #[test]
    fn batch_get_shares_descent_work() {
        // 400 clustered probes: the batch must visit far fewer nodes than
        // 400 independent descents (the PALM [12] amortization).
        let mut t = BTree::with_order(16);
        for i in 0..50_000i64 {
            t.insert(i, i as u64);
        }
        let mut keys: Vec<i64> = (10_000..10_400).collect();
        let (_, batch_fp) = t.batch_get(&mut keys);
        let mut single_nodes = 0;
        for k in &keys {
            single_nodes += t.get(k).1.nodes_visited();
        }
        assert!(
            batch_fp.nodes_visited() * 4 < single_nodes,
            "batch={} singles={single_nodes}",
            batch_fp.nodes_visited()
        );
    }

    #[test]
    fn batch_get_edge_cases() {
        let t: BTree<i64> = BTree::new();
        let (r, _) = t.batch_get(&mut []);
        assert!(r.is_empty());
        let (r, _) = t.batch_get(&mut [5, 5, 5]);
        assert_eq!(r, vec![(5, None)]); // deduplicated, absent
    }

    #[test]
    fn reorganize_compacts_a_fragmented_tree() {
        let mut t = BTree::with_order(16);
        for i in 0..20_000i64 {
            t.insert(i, i as u64);
        }
        // Delete 75% of keys: leaves hover near minimum occupancy.
        for i in 0..20_000i64 {
            if i % 4 != 0 {
                t.remove(&i);
            }
        }
        let frag_nodes = t.node_count();
        let frag_fill = t.avg_leaf_fill();
        let (_, fp_before) = t.get(&10_000);

        t.reorganize(0.9);
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 5_000);
        assert!(
            t.avg_leaf_fill() > frag_fill + 0.2,
            "fill {frag_fill} -> {}",
            t.avg_leaf_fill()
        );
        assert!(
            t.node_count() * 3 < frag_nodes * 2,
            "nodes {frag_nodes} -> {}",
            t.node_count()
        );
        let (v, fp_after) = t.get(&10_000);
        assert_eq!(v, Some(10_000));
        assert!(fp_after.nodes_visited() <= fp_before.nodes_visited());
        // Data intact.
        let mut n = 0;
        t.scan_all(|k, v| {
            assert_eq!(*k % 4, 0);
            assert_eq!(*k as u64, v);
            n += 1;
        });
        assert_eq!(n, 5_000);
    }

    #[test]
    fn smo_counters_appear_in_footprints() {
        let mut t = BTree::with_order(4);
        let mut splits = 0;
        for i in 0..100i64 {
            let (_, fp) = t.insert(i, i as u64);
            splits += fp.splits;
        }
        assert!(splits > 10, "splits={splits}");
        let mut merges = 0;
        let mut borrows = 0;
        for i in 0..100i64 {
            let (_, fp) = t.remove(&i);
            merges += fp.merges;
            borrows += fp.borrows;
        }
        assert!(merges + borrows > 10, "merges={merges} borrows={borrows}");
    }
}
