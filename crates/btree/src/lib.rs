//! # bionic-btree — the index structure and its hardware probe engine
//!
//! §5.3 of the bionic-DBMS paper: OLTP is index-bound, and tree probes are
//! the single biggest hardware-offload target. This crate provides:
//!
//! * [`tree::BTree`] — a from-scratch B+tree over [`key::TreeKey`] (integer
//!   and variable-length string keys), with linked leaves, proper
//!   delete-time rebalancing, bulk load, and an invariant checker. Every
//!   operation returns a [`tree::Footprint`] so the engine can price it.
//! * [`probe::ProbeEngine`] — the pipelined FPGA probe unit: dependent
//!   SG-DRAM reads per level, ~a dozen probes in flight, abort-to-software
//!   on non-resident nodes.
//!
//! Concurrency control is deliberately absent: in the data-oriented
//! architecture "virtually all concurrency control issues are resolved
//! before a request ever reaches the tree" (§5.3).

#![deny(missing_docs)]

pub mod key;
pub mod probe;
pub mod tree;

pub use key::{StrKey, TreeKey};
pub use probe::{ProbeEngine, ProbeEngineConfig, ProbeOutcome, ProbeStats};
pub use tree::{BTree, Footprint};
