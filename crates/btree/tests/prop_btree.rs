//! Property-based tests: the B+tree must behave exactly like a model
//! `std::collections::BTreeMap` under arbitrary operation sequences, while
//! never violating its structural invariants.

use bionic_btree::{BTree, StrKey};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, u64),
    Remove(i64),
    Get(i64),
}

fn op_strategy(key_space: i64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..key_space, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (0..key_space).prop_map(Op::Remove),
        (0..key_space).prop_map(Op::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matches_model_btreemap(
        ops in prop::collection::vec(op_strategy(200), 1..400),
        order in 4usize..32,
    ) {
        let mut tree = BTree::with_order(order);
        let mut model: BTreeMap<i64, u64> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let (old, _) = tree.insert(k, v);
                    prop_assert_eq!(old, model.insert(k, v));
                }
                Op::Remove(k) => {
                    let (old, _) = tree.remove(&k);
                    prop_assert_eq!(old, model.remove(&k));
                }
                Op::Get(k) => {
                    let (got, _) = tree.get(&k);
                    prop_assert_eq!(got, model.get(&k).copied());
                }
            }
        }
        prop_assert_eq!(tree.len(), model.len());
        tree.check_invariants().map_err(TestCaseError::fail)?;
        // Full scan must agree with the model's ordered iteration.
        let mut scanned = Vec::new();
        tree.scan_all(|k, v| scanned.push((*k, v)));
        let expected: Vec<(i64, u64)> = model.into_iter().collect();
        prop_assert_eq!(scanned, expected);
    }

    #[test]
    fn range_matches_model(
        entries in prop::collection::btree_map(0i64..1000, any::<u64>(), 0..300),
        lo in 0i64..1000,
        width in 0i64..200,
        order in 4usize..16,
    ) {
        let mut tree = BTree::with_order(order);
        for (&k, &v) in &entries {
            tree.insert(k, v);
        }
        let hi = lo + width;
        let mut got = Vec::new();
        tree.range(&lo, &hi, |k, v| got.push((*k, v)));
        let expected: Vec<(i64, u64)> =
            entries.range(lo..hi).map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn bulk_load_equals_incremental_build(
        entries in prop::collection::btree_map(0i64..10_000, any::<u64>(), 0..500),
        order in 4usize..64,
        fill in 0.4f64..1.0,
    ) {
        let pairs: Vec<(i64, u64)> = entries.iter().map(|(&k, &v)| (k, v)).collect();
        let bulk = BTree::bulk_load(pairs.clone(), order, fill);
        bulk.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(bulk.len(), pairs.len());
        for (k, v) in &pairs {
            prop_assert_eq!(bulk.get(k).0, Some(*v));
        }
    }

    #[test]
    fn string_keys_match_model(
        ops in prop::collection::vec(
            prop_oneof![
                ("[a-z]{0,12}", any::<u64>()).prop_map(|(k, v)| (k, Some(v))),
                "[a-z]{0,12}".prop_map(|k| (k, None)),
            ],
            1..200,
        ),
    ) {
        let mut tree: BTree<StrKey> = BTree::with_order(8);
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for (k, v) in ops {
            let key = StrKey::new(k.clone().into_bytes());
            match v {
                Some(v) => {
                    let (old, _) = tree.insert(key, v);
                    prop_assert_eq!(old, model.insert(k.into_bytes(), v));
                }
                None => {
                    let (old, _) = tree.remove(&key);
                    prop_assert_eq!(old, model.remove(k.as_bytes()));
                }
            }
        }
        tree.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(tree.len(), model.len());
    }

    #[test]
    fn batch_get_matches_pointwise_gets(
        entries in prop::collection::btree_map(0i64..2000, any::<u64>(), 0..400),
        probes in prop::collection::vec(0i64..2500, 0..200),
        order in 4usize..32,
    ) {
        let mut tree = BTree::with_order(order);
        for (&k, &v) in &entries {
            tree.insert(k, v);
        }
        let mut keys = probes.clone();
        let (results, _) = tree.batch_get(&mut keys);
        // One result per distinct probe, in key order.
        let mut unique = probes.clone();
        unique.sort();
        unique.dedup();
        prop_assert_eq!(
            results.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            unique
        );
        for (k, v) in results {
            prop_assert_eq!(v, entries.get(&k).copied());
        }
    }

    #[test]
    fn footprints_are_bounded_by_height(
        n in 1usize..2000,
        probe in 0i64..5000,
    ) {
        let mut tree = BTree::with_order(16);
        for i in 0..n as i64 {
            tree.insert(i * 3, i as u64);
        }
        let (_, fp) = tree.get(&probe);
        prop_assert_eq!(fp.nodes_visited(), tree.height());
        prop_assert_eq!(fp.leaves_visited, 1);
        prop_assert_eq!(fp.inner_visited, tree.height() - 1);
    }
}
