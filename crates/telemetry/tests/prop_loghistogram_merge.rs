//! Shard-merge laws for [`LogHistogram`] (the attribution invariant).
//!
//! Attribution cells are recorded per shard and folded back with
//! `LogHistogram::merge` when the harness reassembles a sharded cell
//! (`Engine::merge_attribution`). That recombination is only sound if
//! merge obeys the algebra proven here: splitting a sample stream
//! anywhere and merging the pieces reproduces the unsharded histogram
//! exactly, merge is associative and commutative, and the empty
//! histogram is a two-sided identity.
#![recursion_limit = "1024"]

use bionic_telemetry::LogHistogram;
use proptest::prelude::*;

/// Record every sample into a fresh histogram.
fn hist(samples: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

/// Full observable state: everything the attribution CSV reports. Two
/// histograms that agree here are interchangeable everywhere the
/// harness uses them.
fn observe(h: &LogHistogram) -> impl PartialEq + std::fmt::Debug {
    (
        h.count(),
        h.sum(),
        h.mean(),
        h.min(),
        h.max(),
        h.quantile(0.50),
        h.quantile(0.99),
        h.nonzero_buckets().collect::<Vec<_>>(),
    )
}

fn samples() -> impl Strategy<Value = Vec<u64>> {
    // Picosecond latencies from zero up to ~10 µs so split points land
    // in many different log2 buckets, including the exact-max tracking.
    prop::collection::vec(0u64..10_000_000, 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Sharding law: recording a stream whole equals splitting it at any
    // cut points, recording each shard separately, and merging the
    // shard histograms back in shard order.
    #[test]
    fn sharded_recording_matches_unsharded(
        xs in samples(),
        cut_a in 0usize..=200,
        cut_b in 0usize..=200,
    ) {
        let whole = hist(&xs);
        let (a, b) = (cut_a.min(xs.len()), cut_b.min(xs.len()));
        let (lo, hi) = (a.min(b), a.max(b));
        let mut merged = hist(&xs[..lo]);
        merged.merge(&hist(&xs[lo..hi]));
        merged.merge(&hist(&xs[hi..]));
        prop_assert_eq!(observe(&merged), observe(&whole));
    }

    // Associativity: `(a ∪ b) ∪ c == a ∪ (b ∪ c)`, so shard outputs may
    // be folded pairwise in any grouping.
    #[test]
    fn merge_is_associative(
        xs in samples(),
        ys in samples(),
        zs in samples(),
    ) {
        let mut left = hist(&xs);
        left.merge(&hist(&ys));
        left.merge(&hist(&zs));

        let mut right_tail = hist(&ys);
        right_tail.merge(&hist(&zs));
        let mut right = hist(&xs);
        right.merge(&right_tail);

        prop_assert_eq!(observe(&left), observe(&right));
    }

    // Commutativity: shard order never changes the merged histogram.
    #[test]
    fn merge_is_commutative(xs in samples(), ys in samples()) {
        let mut ab = hist(&xs);
        ab.merge(&hist(&ys));
        let mut ba = hist(&ys);
        ba.merge(&hist(&xs));
        prop_assert_eq!(observe(&ab), observe(&ba));
    }

    // The empty histogram is a two-sided identity for merge.
    #[test]
    fn empty_is_identity(xs in samples()) {
        let whole = hist(&xs);

        let mut left = LogHistogram::new();
        left.merge(&whole);
        prop_assert_eq!(observe(&left), observe(&whole));

        let mut right = hist(&xs);
        right.merge(&LogHistogram::new());
        prop_assert_eq!(observe(&right), observe(&whole));
    }
}
