//! Conservation law for [`SnapshotHub`] windows: counter deltas
//! telescope.
//!
//! The adaptive-placement feed consumes per-window counter deltas; those
//! are only trustworthy if summing a counter's deltas across every
//! window reproduces the final cumulative registry value exactly — no
//! events created, lost, or double-counted at window boundaries — and if
//! the window grid itself is gapless. Proven here over arbitrary
//! capture-point counter trajectories (including decreasing ones, where
//! deltas go negative but still telescope).
#![recursion_limit = "1024"]

use bionic_sim::time::SimTime;
use bionic_telemetry::{MetricsRegistry, SnapshotHub, WindowValue};
use proptest::prelude::*;

/// The counters a trajectory drives; a scope the engine never uses.
const COUNTERS: [(&str, &str); 3] = [
    ("prop", "committed"),
    ("prop", "aborted"),
    ("prop/unit", "retries"),
];

fn trajectories() -> impl Strategy<Value = Vec<[u64; 3]>> {
    // One `[u64; 3]` of absolute counter values per capture point.
    prop::collection::vec(
        (
            0u64..1_000_000_000,
            0u64..1_000_000_000,
            0u64..1_000_000_000,
        )
            .prop_map(|(a, b, c)| [a, b, c]),
        1..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Conservation: per counter, the window deltas sum to the final
    // cumulative value (the hub's baseline before the first capture is
    // zero), and a counter absent from a window reads as delta zero.
    #[test]
    fn window_deltas_telescope_to_cumulative(points in trajectories()) {
        let mut hub = SnapshotHub::new(SimTime::from_us(1.0));
        let mut m = MetricsRegistry::new();
        for (i, vals) in points.iter().enumerate() {
            for (c, (scope, name)) in COUNTERS.iter().enumerate() {
                m.counter(scope, name, vals[c]);
            }
            m.gauge("prop", "level", vals[0] as f64);
            hub.capture(SimTime::from_us((i + 1) as f64), &m);
        }
        prop_assert_eq!(hub.len(), points.len());

        let last = points.last().unwrap();
        for (c, (scope, name)) in COUNTERS.iter().enumerate() {
            let total: i64 = hub.windows().map(|w| w.counter_delta(scope, name)).sum();
            prop_assert_eq!(total, last[c] as i64, "counter {}/{}", scope, name);
        }

        // Gauges are levels, not deltas: each window reports the value
        // at its capture point.
        for (w, vals) in hub.windows().zip(&points) {
            prop_assert_eq!(w.gauge_level("prop", "level"), Some(vals[0] as f64));
        }

        // Absent counters read as zero, not as a phantom delta.
        for w in hub.windows() {
            prop_assert_eq!(w.counter_delta("prop", "no-such-counter"), 0);
        }
    }

    // The grid is gapless: window i+1 starts exactly where window i
    // ended, indices are dense from zero, and each window carries
    // exactly one row per registered metric.
    #[test]
    fn window_grid_is_gapless(points in trajectories()) {
        let mut hub = SnapshotHub::new(SimTime::from_us(1.0));
        let mut m = MetricsRegistry::new();
        for (i, vals) in points.iter().enumerate() {
            m.counter("prop", "committed", vals[0]);
            hub.capture(SimTime::from_us((i + 1) as f64), &m);
        }
        let mut prev_end = SimTime::ZERO;
        for (i, w) in hub.windows().enumerate() {
            prop_assert_eq!(w.index as usize, i);
            prop_assert_eq!(w.start, prev_end);
            prop_assert!(w.end > w.start);
            prev_end = w.end;
            let rows: Vec<_> = w.rows().collect();
            prop_assert_eq!(rows.len(), 1, "one registered counter, one row");
            prop_assert!(matches!(rows[0].2, WindowValue::Delta(_)));
        }
    }
}
