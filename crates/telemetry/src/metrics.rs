//! Named counters and gauges with per-component scoping.
//!
//! The registry is a `BTreeMap` keyed on `(scope, name)`, so every
//! iteration — and therefore every CSV export — is in one deterministic
//! order regardless of insertion order or job count. Collection happens on
//! the cold path (end of run, failure snapshot), so simplicity wins over
//! per-update speed here; the hot path never touches this type.

use std::collections::BTreeMap;

/// A metric sample: a monotonic count or a point-in-time level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// A monotonically increasing count (events, bytes, ops).
    Counter(u64),
    /// A point-in-time level (occupancy fraction, joules, bandwidth).
    Gauge(f64),
}

impl MetricValue {
    /// Render for CSV: counters as integers, gauges with six fractional
    /// digits (fixed width keeps exports byte-stable across platforms).
    pub fn render(&self) -> String {
        match self {
            MetricValue::Counter(v) => format!("{v}"),
            MetricValue::Gauge(v) => format!("{v:.6}"),
        }
    }
}

/// A deterministic registry of `(scope, name) -> value` metrics.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    values: BTreeMap<(String, String), MetricValue>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set counter `scope/name` to `v` (overwrites any prior sample).
    pub fn counter(&mut self, scope: &str, name: &str, v: u64) {
        self.values.insert(
            (scope.to_string(), name.to_string()),
            MetricValue::Counter(v),
        );
    }

    /// Set gauge `scope/name` to `v` (overwrites any prior sample).
    pub fn gauge(&mut self, scope: &str, name: &str, v: f64) {
        self.values
            .insert((scope.to_string(), name.to_string()), MetricValue::Gauge(v));
    }

    /// Look up one metric.
    pub fn get(&self, scope: &str, name: &str) -> Option<MetricValue> {
        self.values
            .get(&(scope.to_string(), name.to_string()))
            .copied()
    }

    /// Look up a counter, defaulting to 0 when absent or a gauge.
    pub fn counter_value(&self, scope: &str, name: &str) -> u64 {
        match self.get(scope, name) {
            Some(MetricValue::Counter(v)) => v,
            _ => 0,
        }
    }

    /// Number of recorded metrics.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate `(scope, name, value)` in deterministic `BTreeMap` order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, MetricValue)> {
        self.values
            .iter()
            .map(|((scope, name), v)| (scope.as_str(), name.as_str(), *v))
    }

    /// Render the whole registry as a `scope,name,value` CSV (with header,
    /// trailing newline, rows in deterministic order).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("scope,name,value\n");
        for (scope, name, value) in self.iter() {
            out.push_str(scope);
            out.push(',');
            out.push_str(name);
            out.push(',');
            out.push_str(&value.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_rows_are_sorted_regardless_of_insertion_order() {
        let mut m = MetricsRegistry::new();
        m.counter("wal", "flushes", 3);
        m.counter("engine", "committed", 10);
        m.gauge("fabric", "occupancy", 0.5);
        let csv = m.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines,
            vec![
                "scope,name,value",
                "engine,committed,10",
                "fabric,occupancy,0.500000",
                "wal,flushes,3",
            ]
        );
    }

    #[test]
    fn overwrite_and_lookup() {
        let mut m = MetricsRegistry::new();
        m.counter("engine", "submitted", 1);
        m.counter("engine", "submitted", 2);
        assert_eq!(m.counter_value("engine", "submitted"), 2);
        assert_eq!(m.counter_value("engine", "missing"), 0);
        assert_eq!(m.len(), 1);
    }
}
