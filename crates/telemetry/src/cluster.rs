//! Per-node merging for cluster runs.
//!
//! A cluster run owns one [`Telemetry`](crate::Telemetry) and one
//! [`MetricsRegistry`] *per node*; this module folds them into a single
//! artifact so the existing exporters — the Chrome-trace writer, the
//! metrics CSV — render a whole cluster without learning anything about
//! nodes. The scheme is pure namespacing:
//!
//! * metrics keep their scope but gain a `node{n}/` prefix
//!   (`node0/engine,committed,…`), so the merged CSV stays in one global
//!   `BTreeMap` order and per-node series diff cleanly across runs;
//! * tracks keep their registration order within a node and gain the same
//!   `node{n}/` name prefix (`node1/core-0`, `node2/fpga/scanner`), with
//!   every span's track id remapped into the concatenated track list, so
//!   one Perfetto load shows one track group per node.
//!
//! Merging is deterministic by construction: nodes are folded in index
//! order and nothing is re-sorted here — the exporters' own `(start, seq)`
//! ordering rules apply unchanged to the merged event list.

use crate::metrics::MetricsRegistry;
use crate::tracer::{SpanEvent, Track};

/// Fold per-node metric registries into one, prefixing every scope with
/// `node{n}/` (n = position in `nodes`). Values are copied verbatim.
pub fn merge_node_metrics(nodes: &[&MetricsRegistry]) -> MetricsRegistry {
    let mut merged = MetricsRegistry::new();
    for (n, reg) in nodes.iter().enumerate() {
        for (scope, name, value) in reg.iter() {
            let scoped = format!("node{n}/{scope}");
            match value {
                crate::metrics::MetricValue::Counter(v) => merged.counter(&scoped, name, v),
                crate::metrics::MetricValue::Gauge(v) => merged.gauge(&scoped, name, v),
            }
        }
    }
    merged
}

/// Concatenate per-node track lists and span streams into one trace.
///
/// Each node's tracks are renamed `node{n}/{name}` and appended in node
/// order; each node's events have their `track` ids shifted by the running
/// track offset so they land on their renamed track. Sequence ids are left
/// untouched — they only break ties *within* a track, and merged tracks
/// never interleave nodes.
pub fn merge_node_traces(nodes: &[(&[Track], &[SpanEvent])]) -> (Vec<Track>, Vec<SpanEvent>) {
    let mut tracks = Vec::new();
    let mut events = Vec::new();
    for (n, (node_tracks, node_events)) in nodes.iter().enumerate() {
        let base = tracks.len();
        for t in node_tracks.iter() {
            tracks.push(Track {
                name: format!("node{n}/{}", t.name),
                kind: t.kind,
            });
        }
        for ev in node_events.iter() {
            let mut ev = *ev;
            ev.track += base;
            events.push(ev);
        }
    }
    (tracks, events)
}

/// Render per-node telemetry as one Chrome trace-event JSON document with
/// one track group per node (see [`merge_node_traces`] and
/// [`crate::export::chrome_trace`]).
pub fn merged_chrome_trace(nodes: &[(&[Track], &[SpanEvent])]) -> String {
    let (tracks, events) = merge_node_traces(nodes);
    crate::export::chrome_trace(&tracks, &events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Telemetry;
    use bionic_sim::time::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_ps(ns * 1000)
    }

    fn node(tag: u64) -> Telemetry {
        let mut tel = Telemetry::disabled();
        tel.enable(1, 256);
        tel.set_txn(tag);
        let c0 = tel.core_track(0);
        tel.span(c0, "payment", "Xct", t(tag * 10), t(tag * 10 + 5));
        tel.metrics_mut().counter("engine", "committed", tag);
        tel
    }

    #[test]
    fn metrics_gain_node_prefixes_in_global_order() {
        let (a, b) = (node(1), node(2));
        let merged = merge_node_metrics(&[a.metrics(), b.metrics()]);
        assert_eq!(merged.counter_value("node0/engine", "committed"), 1);
        assert_eq!(merged.counter_value("node1/engine", "committed"), 2);
        let csv = merged.to_csv();
        let n0 = csv.find("node0/engine").unwrap();
        let n1 = csv.find("node1/engine").unwrap();
        assert!(n0 < n1, "BTreeMap order keeps node groups sorted");
    }

    #[test]
    fn merged_trace_has_one_track_group_per_node() {
        let (a, b) = (node(1), node(2));
        let (ea, eb) = (a.events(), b.events());
        let (tracks, events) = merge_node_traces(&[(a.tracks(), &ea[..]), (b.tracks(), &eb[..])]);
        // 1 dispatch + 1 core + 5 units per node.
        assert_eq!(tracks.len(), 14);
        assert_eq!(tracks[0].name, "node0/dispatch");
        assert_eq!(tracks[1].name, "node0/core-0");
        assert_eq!(tracks[7].name, "node1/dispatch");
        assert_eq!(tracks[13].name, "node1/fpga/scanner");
        // Node 1's single span moved onto its shifted core track.
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].track, 1);
        assert_eq!(events[1].track, 8);
    }

    #[test]
    fn merged_trace_passes_the_schema_checker() {
        let (a, b) = (node(1), node(2));
        let (ea, eb) = (a.events(), b.events());
        let json = merged_chrome_trace(&[(a.tracks(), &ea[..]), (b.tracks(), &eb[..])]);
        crate::validate_chrome_trace(&json).expect("schema-valid");
        assert!(json.contains("node0/core-0"));
        assert!(json.contains("node1/core-0"));
    }

    #[test]
    fn empty_node_list_merges_to_empty_artifacts() {
        assert!(merge_node_metrics(&[]).is_empty());
        let (tracks, events) = merge_node_traces(&[]);
        assert!(tracks.is_empty() && events.is_empty());
    }
}
