//! Windowed metric snapshots on a fixed sim-time grid.
//!
//! The adaptive-placement controller (ROADMAP item 4) needs to see the
//! system *per scheduling window*, not cumulatively: how many bytes the
//! arbiter granted this window, how many retries the watchdog priced,
//! whether a breaker opened. [`SnapshotHub`] is that feed. A driver calls
//! [`SnapshotHub::capture`] each time simulated time crosses a window
//! boundary, handing it the freshly collected [`MetricsRegistry`]; the
//! hub diffs every counter against the previous capture (gauges are
//! levels and pass through), labels the delta with the window's index and
//! bounds, and retains it for iteration and export.
//!
//! Determinism: window bounds are [`SimTime`] picoseconds on the caller's
//! fixed grid, counter deltas are exact integers, rows iterate in the
//! registry's `BTreeMap` order, and the CSV/JSON writers use the same
//! integer `fmt_us` formatting as every other exporter — so snapshot
//! artifacts are byte-identical at any `--jobs`×`--shards` setting.
//!
//! Conservation: because each counter delta is `current − previous`, the
//! per-window deltas telescope — summed over all windows they equal the
//! final cumulative counter exactly. The proptest
//! `prop_snapshot_conservation.rs` pins this.

use crate::export::fmt_us;
use crate::metrics::{MetricValue, MetricsRegistry};
use bionic_sim::time::SimTime;
use std::collections::BTreeMap;

/// One captured metric in a window: a counter's exact delta or a gauge's
/// end-of-window level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowValue {
    /// Counter change over the window (signed: a re-collected counter
    /// that moved backwards still conserves).
    Delta(i64),
    /// Gauge level at the window's end.
    Level(f64),
}

impl WindowValue {
    /// Render for CSV: deltas as integers, levels with six fractional
    /// digits (matching [`MetricValue::render`]).
    pub fn render(&self) -> String {
        match self {
            WindowValue::Delta(v) => format!("{v}"),
            WindowValue::Level(v) => format!("{v:.6}"),
        }
    }
}

/// One window's snapshot: its grid position and every metric's delta or
/// level, in deterministic `(scope, name)` order.
#[derive(Debug, Clone)]
pub struct SnapshotWindow {
    /// Zero-based window index on the grid.
    pub index: u64,
    /// Window start (inclusive), sim time.
    pub start: SimTime,
    /// Window end (exclusive), sim time. The final window may be partial.
    pub end: SimTime,
    rows: Vec<(String, String, WindowValue)>,
}

impl SnapshotWindow {
    /// All `(scope, name, value)` rows, sorted by `(scope, name)`.
    pub fn rows(&self) -> impl Iterator<Item = (&str, &str, WindowValue)> {
        self.rows
            .iter()
            .map(|(s, n, v)| (s.as_str(), n.as_str(), *v))
    }

    /// This window's counter delta for `scope/name` (0 when absent or a
    /// gauge).
    pub fn counter_delta(&self, scope: &str, name: &str) -> i64 {
        self.rows
            .iter()
            .find(|(s, n, _)| s == scope && n == name)
            .and_then(|(_, _, v)| match v {
                WindowValue::Delta(d) => Some(*d),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// This window's gauge level for `scope/name` (`None` when absent or
    /// a counter).
    pub fn gauge_level(&self, scope: &str, name: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|(s, n, _)| s == scope && n == name)
            .and_then(|(_, _, v)| match v {
                WindowValue::Level(l) => Some(*l),
                _ => None,
            })
    }
}

/// The windowed snapshot collector. See the module docs for the model.
#[derive(Debug, Clone, Default)]
pub struct SnapshotHub {
    window: SimTime,
    windows: Vec<SnapshotWindow>,
    prev_counters: BTreeMap<(String, String), u64>,
    cursor: SimTime,
}

impl SnapshotHub {
    /// A hub for a grid of `window`-wide sim-time windows starting at
    /// time zero.
    pub fn new(window: SimTime) -> Self {
        SnapshotHub {
            window,
            windows: Vec::new(),
            prev_counters: BTreeMap::new(),
            cursor: SimTime::ZERO,
        }
    }

    /// The configured grid width.
    pub fn window(&self) -> SimTime {
        self.window
    }

    /// Sim time up to which captures have been taken (the next window's
    /// start).
    pub fn cursor(&self) -> SimTime {
        self.cursor
    }

    /// Has simulated time `now` crossed the end of the current window?
    /// Drivers use this to decide when to collect metrics and capture.
    #[inline]
    pub fn due(&self, now: SimTime) -> bool {
        now >= self.cursor + self.window
    }

    /// Capture one window ending at `end` (clamped to start after the
    /// previous window; the caller picks grid-aligned ends, plus one
    /// final partial window at the horizon). Counters are diffed against
    /// the previous capture; gauges are stored as levels.
    pub fn capture(&mut self, end: SimTime, metrics: &MetricsRegistry) {
        let start = self.cursor;
        let end = end.max(start);
        let mut rows = Vec::with_capacity(metrics.len());
        for (scope, name, value) in metrics.iter() {
            let wv = match value {
                MetricValue::Counter(cur) => {
                    let key = (scope.to_string(), name.to_string());
                    let prev = self.prev_counters.insert(key, cur).unwrap_or(0);
                    WindowValue::Delta(cur as i64 - prev as i64)
                }
                MetricValue::Gauge(level) => WindowValue::Level(level),
            };
            rows.push((scope.to_string(), name.to_string(), wv));
        }
        self.windows.push(SnapshotWindow {
            index: self.windows.len() as u64,
            start,
            end,
            rows,
        });
        self.cursor = end;
    }

    /// Captured windows, oldest first — the controller feed.
    pub fn windows(&self) -> impl Iterator<Item = &SnapshotWindow> {
        self.windows.iter()
    }

    /// Number of captured windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Have no windows been captured?
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Render every window as a deterministic CSV:
    /// `window,start_us,end_us,scope,name,kind,value`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("window,start_us,end_us,scope,name,kind,value\n");
        for w in &self.windows {
            for (scope, name, value) in w.rows() {
                let kind = match value {
                    WindowValue::Delta(_) => "delta",
                    WindowValue::Level(_) => "level",
                };
                out.push_str(&format!(
                    "{},{},{},{},{},{},{}\n",
                    w.index,
                    fmt_us(w.start.as_ps()),
                    fmt_us(w.end.as_ps()),
                    scope,
                    name,
                    kind,
                    value.render()
                ));
            }
        }
        out
    }

    /// Render every window as a JSON array (hand-rolled, fixed key
    /// order) for consumers that want structure over rows.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"window\":{},\"start_us\":\"{}\",\"end_us\":\"{}\",\"metrics\":{{",
                w.index,
                fmt_us(w.start.as_ps()),
                fmt_us(w.end.as_ps())
            ));
            for (j, (scope, name, value)) in w.rows().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{scope}/{name}\":{}", value.render()));
            }
            out.push_str("}}");
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: f64) -> SimTime {
        SimTime::from_us(n)
    }

    #[test]
    fn deltas_telescope_to_cumulative() {
        let mut hub = SnapshotHub::new(us(10.0));
        let mut m = MetricsRegistry::new();
        m.counter("engine", "committed", 5);
        hub.capture(us(10.0), &m);
        m.counter("engine", "committed", 12);
        hub.capture(us(20.0), &m);
        m.counter("engine", "committed", 12);
        hub.capture(us(25.0), &m);
        let total: i64 = hub
            .windows()
            .map(|w| w.counter_delta("engine", "committed"))
            .sum();
        assert_eq!(total, 12);
        let deltas: Vec<i64> = hub
            .windows()
            .map(|w| w.counter_delta("engine", "committed"))
            .collect();
        assert_eq!(deltas, vec![5, 7, 0]);
    }

    #[test]
    fn gauges_are_levels_not_deltas() {
        let mut hub = SnapshotHub::new(us(10.0));
        let mut m = MetricsRegistry::new();
        m.gauge("arbiter/sg", "mean_fill_frac", 0.25);
        hub.capture(us(10.0), &m);
        m.gauge("arbiter/sg", "mean_fill_frac", 0.75);
        hub.capture(us(20.0), &m);
        let levels: Vec<f64> = hub
            .windows()
            .filter_map(|w| w.gauge_level("arbiter/sg", "mean_fill_frac"))
            .collect();
        assert_eq!(levels, vec![0.25, 0.75]);
    }

    #[test]
    fn window_bounds_chain_and_final_is_partial() {
        let mut hub = SnapshotHub::new(us(10.0));
        let m = MetricsRegistry::new();
        assert!(!hub.due(us(9.0)));
        assert!(hub.due(us(10.0)));
        hub.capture(us(10.0), &m);
        hub.capture(us(20.0), &m);
        hub.capture(us(23.5), &m);
        let bounds: Vec<(u64, u64, u64)> = hub
            .windows()
            .map(|w| (w.index, w.start.as_ps(), w.end.as_ps()))
            .collect();
        assert_eq!(
            bounds,
            vec![
                (0, 0, 10_000_000),
                (1, 10_000_000, 20_000_000),
                (2, 20_000_000, 23_500_000),
            ]
        );
    }

    #[test]
    fn csv_shape_is_stable() {
        let mut hub = SnapshotHub::new(us(5.0));
        let mut m = MetricsRegistry::new();
        m.counter("wal", "flushes", 2);
        m.gauge("energy", "total_j", 0.5);
        hub.capture(us(5.0), &m);
        let csv = hub.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "window,start_us,end_us,scope,name,kind,value");
        assert_eq!(
            lines[1],
            "0,0.000000,5.000000,energy,total_j,level,0.500000"
        );
        assert_eq!(lines[2], "0,0.000000,5.000000,wal,flushes,delta,2");
    }

    #[test]
    fn json_is_valid_shape() {
        let mut hub = SnapshotHub::new(us(5.0));
        let mut m = MetricsRegistry::new();
        m.counter("wal", "flushes", 2);
        hub.capture(us(5.0), &m);
        let json = hub.to_json();
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"wal/flushes\":2"));
    }
}
