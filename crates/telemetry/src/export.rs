//! Exporters: Chrome trace-event JSON and windowed-occupancy CSV.
//!
//! Both exporters follow the crate's determinism rules: tracks in
//! registration order, events sorted by `(start, seq)` (with `end`
//! descending as the nesting tiebreak), and all timestamp formatting done
//! in integer picosecond math — `ps / 10^6` microseconds with a fixed
//! six-digit fractional part, so no float ever touches the byte stream.

use crate::timeline::Timelines;
use crate::tracer::{SpanEvent, Track, TrackKind};
use bionic_sim::time::SimTime;

/// Format picoseconds as a Chrome-trace `ts` value: microseconds with six
/// fractional digits, computed purely with integer math. Public because
/// every exporter in the crate (snapshots, reports, traces) must format
/// timestamps identically for artifacts to stay byte-stable.
pub fn fmt_us(ps: u64) -> String {
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render `tracks` + `events` as Chrome trace-event JSON (the "JSON object
/// format": `{"traceEvents": [...]}`), loadable in Perfetto and
/// `chrome://tracing`.
///
/// The file is organized as one block per track, in registration order.
/// Each block opens with `M` (metadata) events naming the track, followed
/// by the track's events in `(start, end desc, seq)` order:
///
/// * [`TrackKind::Nested`] tracks (dispatcher, cores) become `B`/`E`
///   pairs. Cores are FIFO servers, so spans on one track either nest or
///   are disjoint; a child whose end overhangs its parent (can only arise
///   from modeling asynchrony) is clamped to the parent's end so pairs
///   always match.
/// * [`TrackKind::Marks`] tracks (pipelined functional units) become `X`
///   complete events, which viewers stack when they overlap.
///
/// Within every track the emitted `ts` sequence is non-decreasing — the
/// property [`crate::validate_chrome_trace`] checks.
pub fn chrome_trace(tracks: &[Track], events: &[SpanEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"bionic-dbms\"}}",
    );

    for (tid, track) in tracks.iter().enumerate() {
        out.push_str(",\n");
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}},\n",
            json_escape(&track.name)
        ));
        out.push_str(&format!(
            "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"sort_index\":{tid}}}}}",
        ));

        let mut evs: Vec<&SpanEvent> = events.iter().filter(|e| e.track == tid).collect();
        evs.sort_unstable_by(|a, b| {
            (a.start_ps, std::cmp::Reverse(a.end_ps), a.seq).cmp(&(
                b.start_ps,
                std::cmp::Reverse(b.end_ps),
                b.seq,
            ))
        });

        match track.kind {
            TrackKind::Marks => {
                for ev in evs {
                    out.push_str(",\n");
                    out.push_str(&format!(
                        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\
                         \"dur\":{},\"pid\":0,\"tid\":{tid},\
                         \"args\":{{\"txn\":{},\"seq\":{}}}}}",
                        json_escape(ev.name),
                        json_escape(ev.category),
                        fmt_us(ev.start_ps),
                        fmt_us(ev.end_ps - ev.start_ps),
                        ev.txn,
                        ev.seq,
                    ));
                }
            }
            TrackKind::Nested => {
                // Stack of open spans: (clamped end, name). Clamping keeps
                // children inside parents, which keeps pops in ts order.
                let mut open: Vec<(u64, &'static str)> = Vec::new();
                let emit_e = |out: &mut String, end: u64, name: &str| {
                    out.push_str(",\n");
                    out.push_str(&format!(
                        "{{\"name\":\"{}\",\"ph\":\"E\",\"ts\":{},\"pid\":0,\"tid\":{tid}}}",
                        json_escape(name),
                        fmt_us(end),
                    ));
                };
                for ev in evs {
                    while let Some(&(end, name)) = open.last() {
                        if end <= ev.start_ps {
                            emit_e(&mut out, end, name);
                            open.pop();
                        } else {
                            break;
                        }
                    }
                    let clamped = match open.last() {
                        Some(&(parent_end, _)) => ev.end_ps.min(parent_end),
                        None => ev.end_ps,
                    };
                    out.push_str(",\n");
                    out.push_str(&format!(
                        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"B\",\"ts\":{},\
                         \"pid\":0,\"tid\":{tid},\"args\":{{\"txn\":{},\"seq\":{}}}}}",
                        json_escape(ev.name),
                        json_escape(ev.category),
                        fmt_us(ev.start_ps),
                        ev.txn,
                        ev.seq,
                    ));
                    open.push((clamped.max(ev.start_ps), ev.name));
                }
                while let Some((end, name)) = open.pop() {
                    emit_e(&mut out, end, name);
                }
            }
        }
    }

    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// One row of the windowed-occupancy export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UtilizationRow {
    /// Track name, as registered.
    pub track: String,
    /// Window index (0-based).
    pub window: usize,
    /// Window start, picoseconds.
    pub start_ps: u64,
    /// Window end, picoseconds. The final window is clipped to the traced
    /// horizon, so a partial tail window has `end_ps - start_ps < window`.
    pub end_ps: u64,
    /// Busy picoseconds inside the window, after union-merging overlaps.
    pub busy_ps: u64,
}

impl UtilizationRow {
    /// Occupancy as a fixed-point fraction string ("0.250000"), computed
    /// with integer math in parts-per-million.
    pub fn occupancy(&self) -> String {
        let width = self.end_ps - self.start_ps;
        if width == 0 {
            return "0.000000".to_string();
        }
        let ppm = self.busy_ps.saturating_mul(1_000_000) / width;
        if ppm >= 1_000_000 {
            "1.000000".to_string()
        } else {
            format!("0.{ppm:06}")
        }
    }
}

/// Slice every track's merged busy intervals into `window`-sized buckets.
///
/// Every registered track gets rows for every window — a unit that never
/// ran still shows up, at zero occupancy, so coverage is explicit. The
/// window count is `ceil(horizon / window)`, minimum one, and the final
/// window's end is clipped to the horizon so a partial tail window
/// reports occupancy against its real width, not the full grid width.
pub fn utilization_rows(
    tracks: &[Track],
    timelines: &Timelines,
    window: SimTime,
) -> Vec<UtilizationRow> {
    let win = window.as_ps().max(1);
    let horizon = timelines.horizon_ps();
    let n_windows = (horizon.div_ceil(win)).max(1) as usize;
    let mut rows = Vec::with_capacity(tracks.len() * n_windows);
    for (tid, track) in tracks.iter().enumerate() {
        for w in 0..n_windows {
            let start = w as u64 * win;
            let end = if horizon > start {
                (start + win).min(horizon)
            } else {
                // Nothing was ever recorded (horizon 0): keep the single
                // full-width window so idle tracks still report 0/window.
                start + win
            };
            rows.push(UtilizationRow {
                track: track.name.clone(),
                window: w,
                start_ps: start,
                end_ps: end,
                busy_ps: timelines.busy_in_window(tid, start, end),
            });
        }
    }
    rows
}

/// Render [`utilization_rows`] as CSV
/// (`track,window,start_us,end_us,busy_us,occupancy`, integer-math
/// microsecond columns, trailing newline).
pub fn utilization_csv(tracks: &[Track], timelines: &Timelines, window: SimTime) -> String {
    let mut out = String::from("track,window,start_us,end_us,busy_us,occupancy\n");
    for row in utilization_rows(tracks, timelines, window) {
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            row.track,
            row.window,
            fmt_us(row.start_ps),
            fmt_us(row.end_ps),
            fmt_us(row.busy_ps),
            row.occupancy(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Telemetry;

    fn t(ns: u64) -> SimTime {
        SimTime::from_ps(ns * 1000)
    }

    fn sample() -> Telemetry {
        let mut tel = Telemetry::disabled();
        tel.enable(2, 4096);
        tel.set_txn(1);
        let c0 = tel.core_track(0);
        tel.span(c0, "payment", "Xct", t(0), t(100));
        tel.span(c0, "update", "Btree", t(10), t(40));
        tel.span(c0, "commit", "Log", t(60), t(90));
        tel.unit_busy(0, "probe", "Btree", t(5), t(25));
        tel.unit_busy(0, "probe", "Btree", t(15), t(35)); // pipelined overlap
        tel
    }

    #[test]
    fn trace_is_valid_per_schema_checker() {
        let tel = sample();
        let json = tel.export_chrome_trace();
        crate::validate_chrome_trace(&json).expect("schema-valid");
    }

    #[test]
    fn nested_spans_emit_matched_be_pairs_in_ts_order() {
        let tel = sample();
        let json = tel.export_chrome_trace();
        let b = json.matches("\"ph\":\"B\"").count();
        let e = json.matches("\"ph\":\"E\"").count();
        assert_eq!(b, 3);
        assert_eq!(b, e);
        // The overlapping unit intervals become X events, not B/E.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
    }

    #[test]
    fn timestamps_use_integer_math_microseconds() {
        assert_eq!(fmt_us(0), "0.000000");
        assert_eq!(fmt_us(1), "0.000001");
        assert_eq!(fmt_us(1_000_000), "1.000000");
        assert_eq!(fmt_us(2_500_123), "2.500123");
    }

    #[test]
    fn utilization_covers_every_track_including_idle_units() {
        let tel = sample();
        let csv = utilization_csv(tel.tracks(), tel.timelines(), SimTime::from_ns(100.0));
        // 1 dispatch + 2 cores + 5 units = 8 tracks, horizon 100ns = 1 window.
        assert_eq!(csv.lines().count(), 1 + 8);
        assert!(csv.contains("fpga/scanner,0,"));
        // Unit 0 busy 5..35ns of 100ns window = 0.30, overlap union-merged.
        assert!(csv.contains("fpga/tree-probe,0,0.000000,0.100000,0.030000,0.300000"));
        // core-0 busy 0..100ns (outer span covers children) = 1.0.
        assert!(csv.contains("core-0,0,0.000000,0.100000,0.100000,1.000000"));
    }

    #[test]
    fn tail_window_is_clipped_to_horizon() {
        // Horizon 150ns with 100ns windows: the second window is a 50ns
        // partial. A track busy for all 50ns of the tail must report full
        // occupancy against the clipped width, not 0.5 of the grid width.
        let mut tel = Telemetry::disabled();
        tel.enable(1, 64);
        let c0 = tel.core_track(0);
        tel.span(c0, "head", "Xct", t(0), t(30));
        tel.span(c0, "tail", "Xct", t(100), t(150));
        let rows = utilization_rows(tel.tracks(), tel.timelines(), SimTime::from_ns(100.0));
        let tail: Vec<&UtilizationRow> = rows
            .iter()
            .filter(|r| r.track == "core-0" && r.window == 1)
            .collect();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].start_ps, 100_000);
        assert_eq!(tail[0].end_ps, 150_000, "tail window end clips to horizon");
        assert_eq!(tail[0].busy_ps, 50_000);
        assert_eq!(tail[0].occupancy(), "1.000000");
        let csv = utilization_csv(tel.tracks(), tel.timelines(), SimTime::from_ns(100.0));
        assert!(csv.contains("core-0,1,0.100000,0.150000,0.050000,1.000000"));
    }

    #[test]
    fn occupancy_is_fixed_point() {
        let row = UtilizationRow {
            track: "x".into(),
            window: 0,
            start_ps: 0,
            end_ps: 1000,
            busy_ps: 250,
        };
        assert_eq!(row.occupancy(), "0.250000");
    }
}
