//! The span recorder: tracks, sinks, and the [`Telemetry`] front end.
//!
//! The recorder is built for one property above all: **the disabled path is
//! free**. [`Telemetry::disabled`] carries a [`NoopSink`] and an `enabled`
//! flag; every recording entry point is `#[inline]` and returns after one
//! branch when disabled, allocating nothing. When enabled, events go into a
//! bounded append-only ring ([`RingSink`]) with stable sequence ids, and
//! busy intervals are mirrored into the [`Timelines`] accumulator.

use crate::metrics::MetricsRegistry;
use crate::timeline::Timelines;
use bionic_sim::time::SimTime;

/// Identifies one track (a core, the dispatcher, or a functional unit).
pub type TrackId = usize;

/// The five §5 functional units, in fixed registration order. Every traced
/// run registers all five — a unit that never ran still gets a track and a
/// zero-occupancy utilization series, so coverage is visible, not implied.
pub const UNIT_NAMES: [&str; 5] = ["tree-probe", "log-insert", "queue", "overlay", "scanner"];

/// How a track's events are rendered in the Chrome trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackKind {
    /// Properly nesting spans (cores, dispatcher): exported as B/E pairs.
    Nested,
    /// Possibly-overlapping busy marks (pipelined units): exported as
    /// complete (`X`) events, which trace viewers stack freely.
    Marks,
}

/// One recorded span. `Copy` and allocation-free: names are `&'static str`
/// (transaction program names and op labels are static in this codebase).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Stable, monotonically increasing sequence id (the export tiebreak).
    pub seq: u64,
    /// Track the span ran on.
    pub track: TrackId,
    /// Start, in sim-time picoseconds.
    pub start_ps: u64,
    /// End, in sim-time picoseconds (`>= start_ps`).
    pub end_ps: u64,
    /// Span name (op kind, program name, or unit operation).
    pub name: &'static str,
    /// Figure-3 category label (`bionic_core::Category::label`-style).
    pub category: &'static str,
    /// Transaction id the work was done for (0 = unattributed).
    pub txn: u64,
}

/// Destination for recorded spans. The engine holds a `Box<dyn TraceSink>`
/// so the disabled case pays one virtual-call-free branch, not a dispatch.
pub trait TraceSink {
    /// Record one span.
    fn record(&mut self, ev: SpanEvent);
    /// All retained spans, oldest first.
    fn events(&self) -> Vec<SpanEvent>;
    /// Spans dropped because the ring was full.
    fn dropped(&self) -> u64;
    /// Forget everything recorded so far.
    fn clear(&mut self);
}

/// The do-nothing sink behind a disabled recorder.
#[derive(Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&mut self, _ev: SpanEvent) {}
    fn events(&self) -> Vec<SpanEvent> {
        Vec::new()
    }
    fn dropped(&self) -> u64 {
        0
    }
    fn clear(&mut self) {}
}

/// Bounded append-only ring buffer: once `capacity` spans are held, the
/// oldest is overwritten and counted as dropped. Sequence ids keep climbing
/// across wraps, so the retained window is always a contiguous, stable
/// suffix of the run.
#[derive(Debug)]
pub struct RingSink {
    buf: Vec<SpanEvent>,
    capacity: usize,
    head: usize,
    dropped: u64,
}

impl RingSink {
    /// A ring retaining up to `capacity` spans (at least 1).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            buf: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            dropped: 0,
        }
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: SpanEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    fn events(&self) -> Vec<SpanEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.dropped = 0;
    }
}

/// One registered track.
#[derive(Debug, Clone)]
pub struct Track {
    /// Display name ("dispatch", "core-3", "fpga/tree-probe", ...).
    pub name: String,
    /// Rendering mode.
    pub kind: TrackKind,
}

/// The telemetry front end an engine owns: tracks, sink, timelines, and the
/// metrics registry, behind one enabled flag.
pub struct Telemetry {
    enabled: bool,
    sink: Box<dyn TraceSink>,
    tracks: Vec<Track>,
    timelines: Timelines,
    metrics: MetricsRegistry,
    next_seq: u64,
    cores: usize,
    current_txn: u64,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled)
            .field("tracks", &self.tracks.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

impl Telemetry {
    /// The default state: recording off, no tracks, no allocation beyond
    /// the empty vectors. Safe to construct in every engine.
    pub fn disabled() -> Self {
        Telemetry {
            enabled: false,
            sink: Box::new(NoopSink),
            tracks: Vec::new(),
            timelines: Timelines::new(),
            metrics: MetricsRegistry::new(),
            next_seq: 0,
            cores: 0,
            current_txn: 0,
        }
    }

    /// Turn recording on with the standard track layout: one dispatcher
    /// track, `cores` core tracks, then the five §5 unit tracks (in
    /// [`UNIT_NAMES`] order). `capacity` bounds the span ring.
    pub fn enable(&mut self, cores: usize, capacity: usize) {
        self.enabled = true;
        self.sink = Box::new(RingSink::new(capacity));
        self.tracks.clear();
        self.tracks.push(Track {
            name: "dispatch".into(),
            kind: TrackKind::Nested,
        });
        for c in 0..cores {
            self.tracks.push(Track {
                name: format!("core-{c}"),
                kind: TrackKind::Nested,
            });
        }
        for unit in UNIT_NAMES {
            self.tracks.push(Track {
                name: format!("fpga/{unit}"),
                kind: TrackKind::Marks,
            });
        }
        self.cores = cores;
        self.timelines = Timelines::with_tracks(self.tracks.len());
        self.next_seq = 0;
        self.current_txn = 0;
    }

    /// Is recording on?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The dispatcher track.
    #[inline]
    pub fn dispatch_track(&self) -> TrackId {
        0
    }

    /// The track of modeled core / agent `agent`.
    #[inline]
    pub fn core_track(&self, agent: usize) -> TrackId {
        1 + agent
    }

    /// The track of §5 unit `unit` (an index into [`UNIT_NAMES`]).
    #[inline]
    pub fn unit_track(&self, unit: usize) -> TrackId {
        1 + self.cores + unit
    }

    /// Registered tracks, in export order.
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// Attribute subsequent spans to transaction `txn` (0 clears).
    #[inline]
    pub fn set_txn(&mut self, txn: u64) {
        if self.enabled {
            self.current_txn = txn;
        }
    }

    /// Record a span of `[start, end]` on `track`. No-op when disabled or
    /// when the interval is empty/inverted (asynchronous tails can round to
    /// zero); the interval also feeds the track's busy timeline.
    #[inline]
    pub fn span(
        &mut self,
        track: TrackId,
        name: &'static str,
        category: &'static str,
        start: SimTime,
        end: SimTime,
    ) {
        if !self.enabled {
            return;
        }
        self.record(track, name, category, start, end);
    }

    /// Record a busy interval on §5 unit `unit` (index into
    /// [`UNIT_NAMES`]). Identical to [`Telemetry::span`] on the unit track;
    /// exists so call sites read as what they are.
    #[inline]
    pub fn unit_busy(
        &mut self,
        unit: usize,
        name: &'static str,
        category: &'static str,
        start: SimTime,
        end: SimTime,
    ) {
        if !self.enabled {
            return;
        }
        let track = self.unit_track(unit);
        self.record(track, name, category, start, end);
    }

    fn record(
        &mut self,
        track: TrackId,
        name: &'static str,
        category: &'static str,
        start: SimTime,
        end: SimTime,
    ) {
        if end <= start || track >= self.tracks.len() {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.sink.record(SpanEvent {
            seq,
            track,
            start_ps: start.as_ps(),
            end_ps: end.as_ps(),
            name,
            category,
            txn: self.current_txn,
        });
        self.timelines.add(track, start.as_ps(), end.as_ps());
    }

    /// All retained spans, oldest first.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.sink.events()
    }

    /// Spans dropped at the ring boundary.
    pub fn dropped(&self) -> u64 {
        self.sink.dropped()
    }

    /// The busy-interval timelines.
    pub fn timelines(&self) -> &Timelines {
        &self.timelines
    }

    /// The metrics registry (read).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The metrics registry (write) — collection is cold-path, so this is
    /// not gated on `enabled`.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Drop all recorded spans, intervals, and metrics, keeping the track
    /// layout and enabled state — what `Engine::finish_load` calls so the
    /// measured run starts clean.
    pub fn reset_run(&mut self) {
        self.sink.clear();
        self.timelines = Timelines::with_tracks(self.tracks.len());
        self.metrics = MetricsRegistry::new();
        self.next_seq = 0;
        self.current_txn = 0;
    }

    /// Export the retained spans as Chrome trace-event JSON (see
    /// [`crate::export::chrome_trace`]).
    pub fn export_chrome_trace(&self) -> String {
        crate::export::chrome_trace(&self.tracks, &self.events())
    }

    /// Windowed occupancy rows for every track (see
    /// [`crate::export::utilization_rows`]).
    pub fn utilization_rows(&self, window: SimTime) -> Vec<crate::export::UtilizationRow> {
        crate::export::utilization_rows(&self.tracks, &self.timelines, window)
    }

    /// Windowed occupancy CSV for every track (see
    /// [`crate::export::utilization_csv`]).
    pub fn utilization_csv(&self, window: SimTime) -> String {
        crate::export::utilization_csv(&self.tracks, &self.timelines, window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_ps(ns * 1000)
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut tel = Telemetry::disabled();
        tel.set_txn(7);
        tel.span(0, "x", "Other", t(0), t(10));
        tel.unit_busy(0, "probe", "Btree", t(0), t(10));
        assert!(tel.events().is_empty());
        assert_eq!(tel.dropped(), 0);
    }

    #[test]
    fn standard_layout_has_dispatch_cores_units() {
        let mut tel = Telemetry::disabled();
        tel.enable(4, 1024);
        assert_eq!(tel.tracks().len(), 1 + 4 + 5);
        assert_eq!(tel.tracks()[0].name, "dispatch");
        assert_eq!(tel.tracks()[tel.core_track(3)].name, "core-3");
        assert_eq!(tel.tracks()[tel.unit_track(0)].name, "fpga/tree-probe");
        assert_eq!(tel.tracks()[tel.unit_track(4)].name, "fpga/scanner");
    }

    #[test]
    fn sequence_ids_are_stable_and_monotonic() {
        let mut tel = Telemetry::disabled();
        tel.enable(1, 1024);
        tel.set_txn(1);
        tel.span(tel.core_track(0), "a", "Xct", t(0), t(5));
        tel.span(tel.core_track(0), "b", "Xct", t(5), t(9));
        let evs = tel.events();
        assert_eq!(evs.len(), 2);
        assert_eq!((evs[0].seq, evs[1].seq), (0, 1));
        assert_eq!(evs[0].txn, 1);
    }

    #[test]
    fn empty_and_inverted_intervals_are_skipped() {
        let mut tel = Telemetry::disabled();
        tel.enable(1, 1024);
        tel.span(0, "zero", "Other", t(5), t(5));
        tel.span(0, "inverted", "Other", t(9), t(4));
        assert!(tel.events().is_empty());
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut sink = RingSink::new(3);
        for i in 0..5u64 {
            sink.record(SpanEvent {
                seq: i,
                track: 0,
                start_ps: i,
                end_ps: i + 1,
                name: "e",
                category: "Other",
                txn: 0,
            });
        }
        let evs = sink.events();
        assert_eq!(evs.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(sink.dropped(), 2);
    }

    #[test]
    fn reset_run_clears_but_keeps_layout() {
        let mut tel = Telemetry::disabled();
        tel.enable(2, 64);
        tel.span(0, "x", "Other", t(0), t(3));
        tel.reset_run();
        assert!(tel.events().is_empty());
        assert!(tel.enabled());
        assert_eq!(tel.tracks().len(), 1 + 2 + 5);
    }
}
