//! # bionic-telemetry — deterministic observability for the simulated stack
//!
//! The paper argues through observability artifacts: Figure 1's utilization
//! curves, Figure 3's time breakdown, §5's claim that specialized units stay
//! busy while cores idle. This crate makes those artifacts *measurable from
//! a traced run* instead of the analytic model alone:
//!
//! * [`Telemetry`] — a span/event recorder keyed on virtual
//!   [`SimTime`](bionic_sim::time::SimTime), never wall clock. Spans carry
//!   the transaction id, the Figure-3 category label, and the component
//!   track they ran on. Storage is an append-only ring buffer behind the
//!   [`TraceSink`] trait; stable sequence ids make traces byte-identical
//!   for any `--jobs` value.
//! * [`MetricsRegistry`] — named counters and gauges with per-component
//!   scoping (engine, wal, bufferpool, queue, each fpga unit, sg-dram,
//!   link), iterated in `BTreeMap` order so every export is deterministic.
//! * [`Timelines`] — busy/idle interval accounting per functional unit and
//!   per modeled core, aggregated into windowed occupancy series
//!   (Figure-1-style utilization from a real run).
//! * Exporters — Chrome trace-event JSON (loadable in Perfetto /
//!   `chrome://tracing`, one track per unit/core, spans nested per
//!   transaction) and flat CSVs; plus [`validate_chrome_trace`], the schema
//!   check CI runs against every exported trace.
//! * [`SnapshotHub`] — windowed snapshots on a fixed sim-time grid:
//!   per-window counter deltas and gauge levels, the feed the adaptive
//!   placement controller (ROADMAP item 4) reads.
//! * [`Attribution`] — commit-time latency/energy attribution per
//!   transaction class × offload path (hw-hit / hw-retry / sw-fallback /
//!   cpu), with a critical-path decomposition into probe, arbiter-wait,
//!   watchdog-retry, fallback, commit, and other segments, built on
//!   pre-sized mergeable [`LogHistogram`]s.
//! * [`RunReport`] — a per-experiment scoreboard with knee/valley
//!   detectors, hand-rolled JSON both ways, markdown rendering, and
//!   [`diff_reports`], the regression gate `report-diff` runs in CI.
//!
//! ## Determinism rules
//!
//! 1. Every timestamp is [`SimTime`](bionic_sim::time::SimTime) picoseconds;
//!    wall-clock never enters the recorder or the exporters.
//! 2. Export ordering is fully specified: tracks in registration order,
//!    events sorted by `(start, seq)` with the stable sequence id as the
//!    tiebreak, metrics in `BTreeMap` order. No hash-map iteration leaks in.
//! 3. Timestamp formatting is integer math (`ps / 10^6` microseconds with a
//!    six-digit fractional part) — no float rounding in the byte stream.
//!
//! ## Overhead budget
//!
//! A disabled recorder must be free: every hot-path entry point checks one
//! `bool` and returns before touching the sink, constructing nothing. The
//! `telemetry_overhead` criterion bench in `bionic-bench` guards this.

#![deny(missing_docs)]

pub mod attrib;
pub mod cluster;
pub mod export;
pub mod histogram;
pub mod metrics;
pub mod report;
pub mod snapshot;
pub mod timeline;
pub mod tracer;
pub mod validate;

pub use attrib::{Attribution, OffloadPath, PathCell, TxnPathAcc};
pub use cluster::{merge_node_metrics, merge_node_traces, merged_chrome_trace};
pub use histogram::LogHistogram;
pub use metrics::{MetricValue, MetricsRegistry};
pub use report::{
    detect_knee, detect_valley, diff_reports, DetectorResult, ExperimentReport, ReportDiff,
    RunReport,
};
pub use snapshot::{SnapshotHub, SnapshotWindow, WindowValue};
pub use timeline::Timelines;
pub use tracer::{RingSink, SpanEvent, Telemetry, TraceSink, TrackId, TrackKind, UNIT_NAMES};
pub use validate::validate_chrome_trace;
