//! Fixed-bucket log₂ histograms over raw `u64` quantities.
//!
//! [`LogHistogram`] is the unit-agnostic sibling of
//! `bionic_sim::stats::Histogram`: the same HdrHistogram bucket layout
//! (64 linear sub-buckets per power of two, ≤1.6 % relative error), but
//! recording plain `u64` values so one type serves picosecond latencies
//! *and* picojoule energy deltas. Everything about it is chosen for the
//! sharded harness:
//!
//! * **Pre-sized storage** — `new()` allocates every bucket up front, so
//!   `record` never allocates (the PR 7 zero-alloc hot loop stays intact
//!   with attribution enabled).
//! * **Integer state only** — counts, a `u128` sum, and `u64` extremes.
//!   No float accumulates, so merging shards in any grouping or order
//!   reproduces the unsharded histogram *exactly*, bucket for bucket.
//! * **Deterministic export** — [`LogHistogram::nonzero_buckets`] walks
//!   buckets in index order, giving byte-stable CSV/JSON rows.
//!
//! The merge algebra (split-anywhere = unsharded, associative,
//! commutative, empty identity) is pinned by
//! `crates/telemetry/tests/prop_loghistogram_merge.rs`.

const SUBBUCKET_BITS: u32 = 6; // 64 linear sub-buckets per power of two
const SUBBUCKETS: u64 = 1 << SUBBUCKET_BITS;
const BUCKETS: usize = (64 - SUBBUCKET_BITS as usize) * SUBBUCKETS as usize;

/// A log₂-bucketed histogram of `u64` values with linear sub-bucket
/// resolution. See the module docs for the design constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
    min: u64,
}

impl LogHistogram {
    /// A fresh, empty histogram with every bucket pre-allocated.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    #[inline]
    fn index(value: u64) -> usize {
        let v = value.max(1);
        let msb = 63 - v.leading_zeros();
        if msb < SUBBUCKET_BITS {
            v as usize
        } else {
            let shift = msb - SUBBUCKET_BITS;
            let sub = (v >> shift) & (SUBBUCKETS - 1);
            ((((msb - SUBBUCKET_BITS + 1) as u64 * SUBBUCKETS) + sub) as usize).min(BUCKETS - 1)
        }
    }

    /// Lower bound of bucket `index` (the value quantiles report).
    #[inline]
    pub fn bucket_floor(index: usize) -> u64 {
        let i = index as u64;
        if i < SUBBUCKETS {
            i
        } else {
            let exp = (i / SUBBUCKETS) as u32 + SUBBUCKET_BITS - 1;
            let sub = i % SUBBUCKETS;
            (1u64 << exp) + (sub << (exp - SUBBUCKET_BITS))
        }
    }

    /// Record one value. Never allocates.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[Self::index(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
        self.min = self.min.min(v);
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact sum of all recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean (integer division; zero when empty).
    pub fn mean(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            (self.sum / self.total as u128) as u64
        }
    }

    /// Largest recorded value (zero when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest recorded value. Empty histograms — including merges of
    /// empty histograms, where the internal minimum is still the
    /// `u64::MAX` sentinel — report zero.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the lower bound of the
    /// containing bucket, clamped into `[min, max]` (≤1.6 % error).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_floor(i).max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one: element-wise bucket add
    /// plus sum/extreme folds. Exact — no information beyond the shared
    /// bucketing is lost, so merge order and grouping never matter.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// Occupied buckets as `(bucket_floor, count)` in ascending bucket
    /// order — the deterministic export walk.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_floor(i), c))
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.99), 0);
        let mut merged = LogHistogram::new();
        merged.merge(&h);
        assert_eq!(merged.min(), 0, "min sentinel must not leak through merge");
    }

    #[test]
    fn bucket_error_is_bounded() {
        for v in [1u64, 63, 64, 65, 1000, 123_456, 9_876_543_210] {
            let floor = LogHistogram::bucket_floor(LogHistogram::index(v));
            assert!(floor <= v, "floor {floor} > value {v}");
            assert!(
                (v - floor) as f64 / v as f64 <= 1.0 / 32.0,
                "v={v} floor={floor}"
            );
        }
    }

    #[test]
    fn quantiles_on_uniform_ramp() {
        let mut h = LogHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 1000);
        }
        let p50 = h.quantile(0.5) as f64;
        let p99 = h.quantile(0.99) as f64;
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.05, "p50={p50}");
        assert!((p99 - 990_000.0).abs() / 990_000.0 < 0.05, "p99={p99}");
    }

    #[test]
    fn merge_combines_counts_sums_and_extremes() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), 1010);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn nonzero_buckets_walk_in_ascending_order() {
        let mut h = LogHistogram::new();
        for v in [5u64, 5, 700, 123_456] {
            h.record(v);
        }
        let rows: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        assert_eq!(rows.iter().map(|&(_, c)| c).sum::<u64>(), 4);
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(rows[0], (5, 2));
    }

    #[test]
    fn record_path_does_not_allocate_after_new() {
        // The counts vec is fully sized at construction; recording the
        // largest representable value must stay in bounds.
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), u64::MAX);
    }
}
