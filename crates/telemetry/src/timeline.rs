//! Busy/idle interval accounting per track.
//!
//! Every span recorded through [`crate::Telemetry`] also lands here as a
//! raw `[start, end)` picosecond interval on its track. At export time the
//! intervals are union-merged (pipelined units overlap; double-counting
//! would report >100% occupancy) and sliced into fixed windows to produce
//! Figure-1-style occupancy series. All arithmetic is integer picoseconds.

/// Per-track busy intervals, indexed by [`crate::tracer::TrackId`].
#[derive(Debug, Default, Clone)]
pub struct Timelines {
    tracks: Vec<Vec<(u64, u64)>>,
}

impl Timelines {
    /// No tracks.
    pub fn new() -> Self {
        Self::default()
    }

    /// `n` empty tracks.
    pub fn with_tracks(n: usize) -> Self {
        Timelines {
            tracks: vec![Vec::new(); n],
        }
    }

    /// Number of tracks.
    pub fn len(&self) -> usize {
        self.tracks.len()
    }

    /// Are there no tracks?
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }

    /// Record a busy interval `[start_ps, end_ps)` on `track`. Out-of-range
    /// tracks and empty intervals are ignored.
    pub fn add(&mut self, track: usize, start_ps: u64, end_ps: u64) {
        if end_ps <= start_ps {
            return;
        }
        if let Some(ivs) = self.tracks.get_mut(track) {
            ivs.push((start_ps, end_ps));
        }
    }

    /// The union-merged busy intervals of `track`, sorted by start.
    pub fn merged(&self, track: usize) -> Vec<(u64, u64)> {
        let mut ivs = match self.tracks.get(track) {
            Some(v) => v.clone(),
            None => return Vec::new(),
        };
        ivs.sort_unstable();
        let mut out: Vec<(u64, u64)> = Vec::with_capacity(ivs.len());
        for (s, e) in ivs {
            match out.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => out.push((s, e)),
            }
        }
        out
    }

    /// Total busy picoseconds on `track` after union-merging overlaps.
    pub fn busy_ps(&self, track: usize) -> u64 {
        self.merged(track).iter().map(|(s, e)| e - s).sum()
    }

    /// The latest interval end across all tracks (the traced horizon).
    pub fn horizon_ps(&self) -> u64 {
        self.tracks
            .iter()
            .flatten()
            .map(|&(_, e)| e)
            .max()
            .unwrap_or(0)
    }

    /// Busy picoseconds of `track` that fall inside `[win_start, win_end)`,
    /// computed on the merged intervals.
    pub fn busy_in_window(&self, track: usize, win_start: u64, win_end: u64) -> u64 {
        self.merged(track)
            .iter()
            .map(|&(s, e)| e.min(win_end).saturating_sub(s.max(win_start)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlapping_intervals_union_merge() {
        let mut tl = Timelines::with_tracks(1);
        tl.add(0, 10, 20);
        tl.add(0, 15, 30); // overlaps previous
        tl.add(0, 30, 40); // adjacent — merges too
        tl.add(0, 50, 60);
        assert_eq!(tl.merged(0), vec![(10, 40), (50, 60)]);
        assert_eq!(tl.busy_ps(0), 40);
    }

    #[test]
    fn windowed_busy_clips_at_boundaries() {
        let mut tl = Timelines::with_tracks(1);
        tl.add(0, 5, 25);
        assert_eq!(tl.busy_in_window(0, 0, 10), 5);
        assert_eq!(tl.busy_in_window(0, 10, 20), 10);
        assert_eq!(tl.busy_in_window(0, 20, 30), 5);
        assert_eq!(tl.busy_in_window(0, 30, 40), 0);
    }

    #[test]
    fn empty_and_out_of_range_are_safe() {
        let mut tl = Timelines::with_tracks(2);
        tl.add(0, 7, 7); // empty — ignored
        tl.add(9, 0, 10); // no such track — ignored
        assert_eq!(tl.busy_ps(0), 0);
        assert_eq!(tl.busy_ps(9), 0);
        assert_eq!(tl.horizon_ps(), 0);
        tl.add(1, 0, 100);
        assert_eq!(tl.horizon_ps(), 100);
    }
}
