//! Chrome trace-event schema validation — the check CI runs on every
//! exported trace.
//!
//! The crate has no JSON dependency (the workspace is offline), so this
//! module carries a small recursive-descent JSON parser sufficient for the
//! whole trace-event grammar, then checks the event stream:
//!
//! 1. the document is well-formed JSON: an object with a `traceEvents`
//!    array (or a bare array, which the format also allows);
//! 2. every event is an object with a string `ph`, and every `B`/`E`/`X`
//!    event carries numeric `ts`, `pid`, and `tid`;
//! 3. per `(pid, tid)` track, `ts` is non-decreasing in file order and
//!    `B`/`E` pairs match like brackets (same name, fully nested);
//! 4. every `X` event carries a numeric `dur`.

use std::collections::BTreeMap;

/// A parsed JSON value (just enough for trace files).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one UTF-8 scalar. The input came from &str,
                    // so boundaries are valid; decode just this scalar —
                    // re-validating the whole remaining slice per char
                    // would make parsing quadratic.
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc2..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("truncated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn document(&mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing garbage after document"));
        }
        Ok(v)
    }
}

/// Validate `text` against the Chrome trace-event schema (see module docs
/// for the exact checks). Returns `Ok(())` or the first violation found.
pub fn validate_chrome_trace(text: &str) -> Result<(), String> {
    let doc = Parser::new(text).document()?;
    let events = match &doc {
        Json::Arr(items) => items,
        Json::Obj(_) => match doc.get("traceEvents") {
            Some(Json::Arr(items)) => items,
            Some(_) => return Err("traceEvents is not an array".to_string()),
            None => return Err("top-level object lacks traceEvents".to_string()),
        },
        _ => return Err("document is neither an object nor an array".to_string()),
    };

    // Per (pid, tid): (last ts seen, stack of open B names).
    let mut tracks: BTreeMap<(i64, i64), (f64, Vec<String>)> = BTreeMap::new();

    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing string ph"))?;
        if !matches!(ph, "B" | "E" | "X") {
            continue; // metadata and counter events carry no timeline state
        }
        let ts = ev
            .get("ts")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("event {i}: missing numeric ts"))?;
        let pid = ev
            .get("pid")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("event {i}: missing numeric pid"))? as i64;
        let tid = ev
            .get("tid")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("event {i}: missing numeric tid"))? as i64;

        let (last_ts, stack) = tracks
            .entry((pid, tid))
            .or_insert((f64::NEG_INFINITY, Vec::new()));
        if ts < *last_ts {
            return Err(format!(
                "event {i}: ts {ts} decreases on track pid={pid} tid={tid} (prev {last_ts})"
            ));
        }
        *last_ts = ts;

        match ph {
            "B" => {
                let name = ev
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i}: B without a name"))?;
                stack.push(name.to_string());
            }
            "E" => {
                let opened = stack
                    .pop()
                    .ok_or_else(|| format!("event {i}: E with no open B on tid={tid}"))?;
                if let Some(name) = ev.get("name").and_then(Json::as_str) {
                    if name != opened {
                        return Err(format!(
                            "event {i}: E name {name:?} does not match open B {opened:?}"
                        ));
                    }
                }
            }
            "X" => {
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("event {i}: X without numeric dur"))?;
                if dur < 0.0 {
                    return Err(format!("event {i}: negative dur"));
                }
            }
            _ => unreachable!(),
        }
    }

    for ((pid, tid), (_, stack)) in &tracks {
        if let Some(name) = stack.last() {
            return Err(format!(
                "unclosed B {name:?} at end of trace on pid={pid} tid={tid}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_minimal_valid_trace() {
        let t = r#"{"traceEvents":[
            {"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"core-0"}},
            {"name":"a","cat":"Xct","ph":"B","ts":1.0,"pid":0,"tid":0},
            {"name":"b","cat":"Xct","ph":"B","ts":2.0,"pid":0,"tid":0},
            {"name":"b","ph":"E","ts":3.0,"pid":0,"tid":0},
            {"name":"a","ph":"E","ts":4.0,"pid":0,"tid":0},
            {"name":"probe","cat":"Btree","ph":"X","ts":1.5,"dur":0.5,"pid":0,"tid":1}
        ]}"#;
        validate_chrome_trace(t).unwrap();
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(validate_chrome_trace("{\"traceEvents\":[").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]} trailing").is_err());
        assert!(validate_chrome_trace("42").is_err());
    }

    #[test]
    fn rejects_decreasing_ts_on_a_track() {
        let t = r#"[
            {"name":"a","ph":"B","ts":5.0,"pid":0,"tid":0},
            {"name":"a","ph":"E","ts":4.0,"pid":0,"tid":0}
        ]"#;
        let err = validate_chrome_trace(t).unwrap_err();
        assert!(err.contains("decreases"), "{err}");
    }

    #[test]
    fn rejects_unmatched_pairs() {
        let open = r#"[{"name":"a","ph":"B","ts":1.0,"pid":0,"tid":0}]"#;
        assert!(validate_chrome_trace(open)
            .unwrap_err()
            .contains("unclosed"));

        let stray = r#"[{"name":"a","ph":"E","ts":1.0,"pid":0,"tid":0}]"#;
        assert!(validate_chrome_trace(stray)
            .unwrap_err()
            .contains("no open B"));

        let crossed = r#"[
            {"name":"a","ph":"B","ts":1.0,"pid":0,"tid":0},
            {"name":"b","ph":"E","ts":2.0,"pid":0,"tid":0}
        ]"#;
        assert!(validate_chrome_trace(crossed)
            .unwrap_err()
            .contains("does not match"));
    }

    #[test]
    fn separate_tracks_are_independent() {
        let t = r#"[
            {"name":"a","ph":"B","ts":5.0,"pid":0,"tid":0},
            {"name":"u","ph":"X","ts":1.0,"dur":1.0,"pid":0,"tid":1},
            {"name":"a","ph":"E","ts":6.0,"pid":0,"tid":0}
        ]"#;
        validate_chrome_trace(t).unwrap();
    }

    #[test]
    fn rejects_x_without_dur() {
        let t = r#"[{"name":"u","ph":"X","ts":1.0,"pid":0,"tid":0}]"#;
        assert!(validate_chrome_trace(t).unwrap_err().contains("dur"));
    }
}
