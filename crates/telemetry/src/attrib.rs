//! Per-op-class latency and energy attribution, recorded at commit time.
//!
//! The paper's placement question — which ops belong on specialized
//! hardware — needs more than one global latency histogram: it needs to
//! know *which transaction class*, on *which offload path* (hardware hit,
//! hardware retry, software fallback, plain CPU), spent its time and
//! joules *where* (probing, waiting on the bandwidth arbiter, burning
//! watchdog retries, falling back, committing). This module is that
//! ledger:
//!
//! * [`OffloadPath`] — how a transaction's hardware offload actually went.
//! * [`TxnPathAcc`] — the per-transaction accumulator the engine keeps in
//!   its scratch: fixed arrays, `Copy`, reset per transaction, never
//!   allocating.
//! * [`Attribution`] — per `(class, path)` cells of latency and energy
//!   [`LogHistogram`]s plus critical-path segment sums. Recording is
//!   allocation-free after a class's first occurrence (classes are
//!   `&'static str` program names, a handful per workload); cells merge
//!   exactly under sharding.
//!
//! Energy is attributed in integer **picojoules**: the per-transaction
//! `f64` joule delta is converted once at record time, so shard merges
//! add integers and stay byte-identical at any `--jobs`×`--shards`.

use crate::histogram::LogHistogram;

/// Number of critical-path segments in [`TxnPathAcc`].
pub const SEGMENTS: usize = 6;
/// Segment index: index/tree probe service time.
pub const SEG_PROBE: usize = 0;
/// Segment index: SG-DRAM / PCIe-link arbiter queueing delay.
pub const SEG_ARBITER_WAIT: usize = 1;
/// Segment index: watchdog-priced hardware retry delay.
pub const SEG_RETRY: usize = 2;
/// Segment index: software-fallback execution after a hardware refusal.
pub const SEG_FALLBACK: usize = 3;
/// Segment index: log write + group-commit wait.
pub const SEG_COMMIT: usize = 4;
/// Segment index: everything else (buffer pool, locking, CPU compute).
pub const SEG_OTHER: usize = 5;

/// Display names for the six segments, in index order.
pub const SEGMENT_NAMES: [&str; SEGMENTS] = [
    "probe",
    "arbiter-wait",
    "watchdog-retry",
    "fallback",
    "commit",
    "other",
];

/// How a transaction's hardware offload went, judged over all of its ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OffloadPath {
    /// No op attempted a hardware unit (software/CPU execution).
    Cpu,
    /// Every offloaded op ran on healthy hardware, first try.
    HwHit,
    /// At least one op paid a watchdog retry, but none fell back.
    HwRetry,
    /// At least one op was refused by hardware and ran in software.
    SwFallback,
}

/// All paths, in export order.
pub const PATHS: [OffloadPath; 4] = [
    OffloadPath::Cpu,
    OffloadPath::HwHit,
    OffloadPath::HwRetry,
    OffloadPath::SwFallback,
];

impl OffloadPath {
    /// Stable label used in CSV/JSON exports.
    pub fn label(&self) -> &'static str {
        match self {
            OffloadPath::Cpu => "cpu",
            OffloadPath::HwHit => "hw-hit",
            OffloadPath::HwRetry => "hw-retry",
            OffloadPath::SwFallback => "sw-fallback",
        }
    }

    /// Dense index into `[_; 4]` path arrays, matching [`PATHS`] order.
    #[inline]
    pub fn idx(self) -> usize {
        self as usize
    }
}

/// Per-transaction critical-path accumulator. Lives in the engine's
/// reusable scratch: plain `Copy` arrays and flags, reset between
/// transactions, so charging a segment costs an add and no allocation.
#[derive(Debug, Clone, Copy, Default)]
pub struct TxnPathAcc {
    /// Picoseconds charged to each segment so far (indexed by `SEG_*`).
    pub segs: [u64; SEGMENTS],
    /// Did any op attempt a hardware unit?
    pub offloaded: bool,
    /// Did any op pay a watchdog retry delay?
    pub retried: bool,
    /// Did any op fall back to software after a hardware refusal?
    pub fell_back: bool,
}

impl TxnPathAcc {
    /// Clear for the next transaction.
    #[inline]
    pub fn reset(&mut self) {
        *self = TxnPathAcc::default();
    }

    /// Charge `ps` picoseconds to segment `seg` (a `SEG_*` index).
    #[inline]
    pub fn charge(&mut self, seg: usize, ps: u64) {
        self.segs[seg] += ps;
    }

    /// Classify the transaction's offload path from the recorded flags.
    #[inline]
    pub fn path(&self) -> OffloadPath {
        if !self.offloaded {
            OffloadPath::Cpu
        } else if self.fell_back {
            OffloadPath::SwFallback
        } else if self.retried {
            OffloadPath::HwRetry
        } else {
            OffloadPath::HwHit
        }
    }
}

/// One `(class, path)` attribution cell: latency and energy histograms
/// plus the critical-path segment totals.
#[derive(Debug, Clone, Default)]
pub struct PathCell {
    /// Commit latency in picoseconds.
    pub latency_ps: LogHistogram,
    /// Per-transaction energy delta in picojoules.
    pub energy_pj: LogHistogram,
    /// Total picoseconds per critical-path segment (indexed by `SEG_*`).
    pub segments_ps: [u64; SEGMENTS],
}

impl PathCell {
    fn merge(&mut self, other: &PathCell) {
        self.latency_ps.merge(&other.latency_ps);
        self.energy_pj.merge(&other.energy_pj);
        for (a, b) in self.segments_ps.iter_mut().zip(&other.segments_ps) {
            *a += *b;
        }
    }

    fn is_empty(&self) -> bool {
        self.latency_ps.count() == 0
    }
}

struct ClassEntry {
    label: &'static str,
    cells: [PathCell; 4],
}

/// The commit-time attribution ledger: per transaction class (static
/// program name) × offload path, pre-bucketed latency/energy histograms
/// and segment sums. Recording allocates only the first time a class is
/// seen (during warmup); steady state is allocation-free.
#[derive(Default)]
pub struct Attribution {
    classes: Vec<ClassEntry>,
}

impl std::fmt::Debug for Attribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Attribution")
            .field("classes", &self.classes.len())
            .finish()
    }
}

impl Attribution {
    /// An empty ledger.
    pub fn new() -> Self {
        Attribution {
            classes: Vec::new(),
        }
    }

    #[inline]
    fn entry(&mut self, label: &'static str) -> &mut ClassEntry {
        // Linear probe over a handful of static labels: cheaper and more
        // deterministic than hashing, and allocation only on first sight.
        if let Some(i) = self.classes.iter().position(|c| c.label == label) {
            &mut self.classes[i]
        } else {
            self.classes.push(ClassEntry {
                label,
                cells: Default::default(),
            });
            self.classes.last_mut().expect("just pushed")
        }
    }

    /// Record one committed transaction: latency in picoseconds, energy
    /// delta in picojoules, and the per-txn accumulator whose flags pick
    /// the offload path. Whatever latency the segments don't explain is
    /// charged to `SEG_OTHER`, so the decomposition always sums to the
    /// recorded latency.
    pub fn record(
        &mut self,
        label: &'static str,
        latency_ps: u64,
        energy_pj: u64,
        acc: &TxnPathAcc,
    ) {
        let path = acc.path();
        let cell = &mut self.entry(label).cells[path.idx()];
        cell.latency_ps.record(latency_ps);
        cell.energy_pj.record(energy_pj);
        let mut explained = 0u64;
        for (seg, &ps) in acc.segs.iter().enumerate() {
            cell.segments_ps[seg] += ps;
            if seg != SEG_OTHER {
                explained = explained.saturating_add(ps);
            }
        }
        cell.segments_ps[SEG_OTHER] += latency_ps.saturating_sub(explained);
    }

    /// Total committed transactions recorded, across all classes/paths.
    pub fn count(&self) -> u64 {
        self.classes
            .iter()
            .flat_map(|c| c.cells.iter())
            .map(|p| p.latency_ps.count())
            .sum()
    }

    /// Is the ledger empty?
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Drop all recorded state, keeping class capacity.
    pub fn reset(&mut self) {
        for c in &mut self.classes {
            c.cells = Default::default();
        }
    }

    /// Merge another ledger into this one (the harness shard fold).
    /// Exact: histograms add bucket-wise, segments add as integers, so
    /// merge order and grouping never change the result.
    pub fn merge(&mut self, other: &Attribution) {
        for oc in &other.classes {
            let entry = self.entry(oc.label);
            for (mine, theirs) in entry.cells.iter_mut().zip(&oc.cells) {
                mine.merge(theirs);
            }
        }
    }

    /// Committed-transaction counts per offload path, summed over all
    /// classes and indexed like [`PATHS`] — the retry/fallback rates the
    /// windowed snapshots export.
    pub fn path_counts(&self) -> [u64; 4] {
        let mut out = [0u64; 4];
        for c in &self.classes {
            for (i, cell) in c.cells.iter().enumerate() {
                out[i] += cell.latency_ps.count();
            }
        }
        out
    }

    /// Occupied `(class, path, cell)` triples sorted by class label then
    /// path — the deterministic export walk, independent of the order
    /// classes were first seen (which can differ per shard).
    pub fn cells(&self) -> Vec<(&'static str, OffloadPath, &PathCell)> {
        let mut out: Vec<(&'static str, OffloadPath, &PathCell)> = Vec::new();
        for c in &self.classes {
            for path in PATHS {
                let cell = &c.cells[path.idx()];
                if !cell.is_empty() {
                    out.push((c.label, path, cell));
                }
            }
        }
        out.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        out
    }

    /// Render the ledger as a deterministic CSV: one row per occupied
    /// `(class, path)` cell, integer picosecond/picojoule values only.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "class,path,count,lat_mean_ps,lat_p50_ps,lat_p99_ps,lat_max_ps,energy_pj_mean,\
             probe_ps,arbiter_wait_ps,watchdog_retry_ps,fallback_ps,commit_ps,other_ps\n",
        );
        for (label, path, cell) in self.cells() {
            let lat = &cell.latency_ps;
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{}",
                label,
                path.label(),
                lat.count(),
                lat.mean(),
                lat.quantile(0.50),
                lat.quantile(0.99),
                lat.max(),
                cell.energy_pj.mean(),
            ));
            for ps in cell.segments_ps {
                out.push_str(&format!(",{ps}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(segs: [u64; SEGMENTS], offloaded: bool, retried: bool, fell_back: bool) -> TxnPathAcc {
        TxnPathAcc {
            segs,
            offloaded,
            retried,
            fell_back,
        }
    }

    #[test]
    fn path_classification_priority() {
        assert_eq!(acc([0; 6], false, false, false).path(), OffloadPath::Cpu);
        assert_eq!(acc([0; 6], true, false, false).path(), OffloadPath::HwHit);
        assert_eq!(acc([0; 6], true, true, false).path(), OffloadPath::HwRetry);
        assert_eq!(
            acc([0; 6], true, true, true).path(),
            OffloadPath::SwFallback,
            "fallback dominates retry"
        );
    }

    #[test]
    fn unexplained_latency_lands_in_other() {
        let mut a = Attribution::new();
        let mut t = TxnPathAcc {
            offloaded: true,
            ..TxnPathAcc::default()
        };
        t.charge(SEG_PROBE, 300);
        t.charge(SEG_COMMIT, 200);
        a.record("pay", 1000, 42, &t);
        let cells = a.cells();
        assert_eq!(cells.len(), 1);
        let (_, path, cell) = cells[0];
        assert_eq!(path, OffloadPath::HwHit);
        assert_eq!(cell.segments_ps[SEG_PROBE], 300);
        assert_eq!(cell.segments_ps[SEG_COMMIT], 200);
        assert_eq!(cell.segments_ps[SEG_OTHER], 500);
        assert_eq!(cell.segments_ps.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn merge_is_exact_and_order_independent() {
        let t = acc([10, 0, 0, 0, 5, 0], true, false, false);
        let mut whole = Attribution::new();
        let mut left = Attribution::new();
        let mut right = Attribution::new();
        for i in 0..10u64 {
            whole.record("a", 100 + i, i, &t);
            if i < 4 {
                left.record("a", 100 + i, i, &t);
            } else {
                right.record("a", 100 + i, i, &t);
            }
        }
        // Seed the shards with different first-seen class orders.
        left.record("b", 7, 1, &TxnPathAcc::default());
        whole.record("b", 7, 1, &TxnPathAcc::default());
        let mut ab = Attribution::new();
        ab.merge(&left);
        ab.merge(&right);
        let mut ba = Attribution::new();
        ba.merge(&right);
        ba.merge(&left);
        assert_eq!(ab.to_csv(), whole.to_csv());
        assert_eq!(ba.to_csv(), whole.to_csv());
    }

    #[test]
    fn csv_is_sorted_by_class_then_path() {
        let mut a = Attribution::new();
        a.record("zeta", 10, 1, &acc([0; 6], true, false, false));
        a.record("alpha", 10, 1, &TxnPathAcc::default());
        a.record("alpha", 12, 1, &acc([0; 6], true, true, true));
        let csv = a.to_csv();
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        assert_eq!(rows.len(), 3);
        assert!(rows[0].starts_with("alpha,cpu,"));
        assert!(rows[1].starts_with("alpha,sw-fallback,"));
        assert!(rows[2].starts_with("zeta,hw-hit,"));
    }

    #[test]
    fn reset_clears_counts_but_keeps_classes() {
        let mut a = Attribution::new();
        a.record("x", 5, 0, &TxnPathAcc::default());
        assert_eq!(a.count(), 1);
        a.reset();
        assert!(a.is_empty());
        a.record("x", 5, 0, &TxnPathAcc::default());
        assert_eq!(a.count(), 1);
    }
}
