//! Run reports: a structured per-experiment scoreboard, its JSON/markdown
//! renderers, a schema-checking parser, and the regression differ.
//!
//! A *run report* condenses one harness run (the CSV tables the cells
//! wrote) into a single machine-readable artifact: per-experiment columns
//! and rows carried verbatim from the CSVs, plus automatic detector
//! verdicts (the E13 contention knee, the E14 mid-band valley). Because
//! cells are byte-identical across `--jobs`×`--shards`, so is the report.
//!
//! The crate has no serde (vendored-deps-only build), so JSON is
//! hand-rolled both ways: [`JsonValue`] is written with a fixed key
//! order and parsed with a small recursive-descent reader. Numbers are
//! kept as their **raw source tokens** end to end — the differ parses
//! them to `f64` only to compare, never to re-format — which makes
//! report → parse → diff pipelines byte-exact.

use crate::export::json_escape;

/// A parsed or under-construction JSON value. Object keys keep insertion
/// order; numbers keep their raw token so round-trips are byte-exact.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its raw token (e.g. `"1.234e6"`).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Numeric view of this value (`Num` tokens parsed as `f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// String view of this value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array view of this value.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Render as compact JSON, keys in stored order.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(s) => out.push_str(s),
            JsonValue::Str(s) => {
                out.push('"');
                out.push_str(&json_escape(s));
                out.push('"');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&json_escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Is `s` a valid JSON number token? (Strict: what the writer may emit
/// unquoted.)
pub fn is_json_number(s: &str) -> bool {
    let b = s.as_bytes();
    let mut i = 0;
    if b.is_empty() {
        return false;
    }
    if b[i] == b'-' {
        i += 1;
    }
    let int_start = i;
    while i < b.len() && b[i].is_ascii_digit() {
        i += 1;
    }
    if i == int_start || (b[int_start] == b'0' && i > int_start + 1) {
        return false;
    }
    if i < b.len() && b[i] == b'.' {
        i += 1;
        let frac_start = i;
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
        if i == frac_start {
            return false;
        }
    }
    if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
        i += 1;
        if i < b.len() && (b[i] == b'+' || b[i] == b'-') {
            i += 1;
        }
        let exp_start = i;
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
        if i == exp_start {
            return false;
        }
    }
    i == b.len()
}

/// Parse a JSON document (the subset the reporters emit: no unicode
/// escapes beyond `\uXXXX`, which is decoded).
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.i
            )),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.i;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        let tok = std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?;
        if is_json_number(tok) {
            Ok(JsonValue::Num(tok.to_string()))
        } else {
            Err(format!("bad number {tok:?} at offset {start}"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.i + 4 >= self.b.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                .map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.i += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (may be multi-byte).
                    let rest = std::str::from_utf8(&self.b[self.i..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let val = self.value()?;
            fields.push((key, val));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

/// The report schema identifier; bumped on incompatible layout changes.
pub const REPORT_SCHEMA: &str = "bionic-run-report-v1";

/// One automatic detector's verdict over an experiment's series.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorResult {
    /// Detector name (`contention-knee`, `midband-valley`, ...).
    pub name: String,
    /// Did the detector fire?
    pub found: bool,
    /// X-axis label where it fired (empty when not found).
    pub at: String,
    /// One-sentence human rendering of the verdict.
    pub details: String,
}

/// One experiment's scoreboard: its table carried verbatim plus detector
/// verdicts.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// Experiment id (`e13`).
    pub id: String,
    /// Source table name (`e13_hybrid`).
    pub table: String,
    /// Column headers, verbatim from the CSV.
    pub columns: Vec<String>,
    /// Rows of cells, verbatim from the CSV.
    pub rows: Vec<Vec<String>>,
    /// Detector verdicts, in registration order.
    pub detectors: Vec<DetectorResult>,
}

/// A whole run's report: schema tag plus per-experiment scoreboards.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Scale label the run used (`smoke` / `full`).
    pub scale: String,
    /// Per-experiment scoreboards, in run order.
    pub experiments: Vec<ExperimentReport>,
}

fn cell_value(cell: &str) -> JsonValue {
    if is_json_number(cell) {
        JsonValue::Num(cell.to_string())
    } else {
        JsonValue::Str(cell.to_string())
    }
}

impl RunReport {
    /// Render as schema-tagged JSON (compact, fixed key order — the
    /// byte-stable artifact the determinism test compares).
    pub fn to_json(&self) -> String {
        let mut exps = Vec::new();
        for e in &self.experiments {
            let columns = JsonValue::Arr(
                e.columns
                    .iter()
                    .map(|c| JsonValue::Str(c.clone()))
                    .collect(),
            );
            let rows = JsonValue::Arr(
                e.rows
                    .iter()
                    .map(|r| JsonValue::Arr(r.iter().map(|c| cell_value(c)).collect()))
                    .collect(),
            );
            let detectors = JsonValue::Arr(
                e.detectors
                    .iter()
                    .map(|d| {
                        JsonValue::Obj(vec![
                            ("name".into(), JsonValue::Str(d.name.clone())),
                            ("found".into(), JsonValue::Bool(d.found)),
                            ("at".into(), JsonValue::Str(d.at.clone())),
                            ("details".into(), JsonValue::Str(d.details.clone())),
                        ])
                    })
                    .collect(),
            );
            exps.push(JsonValue::Obj(vec![
                ("id".into(), JsonValue::Str(e.id.clone())),
                ("table".into(), JsonValue::Str(e.table.clone())),
                ("columns".into(), columns),
                ("rows".into(), rows),
                ("detectors".into(), detectors),
            ]));
        }
        let doc = JsonValue::Obj(vec![
            ("schema".into(), JsonValue::Str(REPORT_SCHEMA.into())),
            ("scale".into(), JsonValue::Str(self.scale.clone())),
            ("experiments".into(), JsonValue::Arr(exps)),
        ]);
        let mut out = doc.to_json();
        out.push('\n');
        out
    }

    /// Parse and schema-check a report document produced by
    /// [`RunReport::to_json`]. Errors name the offending field.
    pub fn from_json(text: &str) -> Result<RunReport, String> {
        let doc = parse_json(text)?;
        let schema = doc
            .get("schema")
            .and_then(|v| v.as_str())
            .ok_or("missing schema tag")?;
        if schema != REPORT_SCHEMA {
            return Err(format!(
                "unknown schema {schema:?}, expected {REPORT_SCHEMA:?}"
            ));
        }
        let scale = doc
            .get("scale")
            .and_then(|v| v.as_str())
            .ok_or("missing scale")?
            .to_string();
        let mut experiments = Vec::new();
        for (n, e) in doc
            .get("experiments")
            .and_then(|v| v.as_arr())
            .ok_or("missing experiments array")?
            .iter()
            .enumerate()
        {
            let id = e
                .get("id")
                .and_then(|v| v.as_str())
                .ok_or_else(|| format!("experiment {n}: missing id"))?
                .to_string();
            let table = e
                .get("table")
                .and_then(|v| v.as_str())
                .ok_or_else(|| format!("{id}: missing table"))?
                .to_string();
            let columns: Vec<String> = e
                .get("columns")
                .and_then(|v| v.as_arr())
                .ok_or_else(|| format!("{id}: missing columns"))?
                .iter()
                .map(|c| c.as_str().unwrap_or_default().to_string())
                .collect();
            let mut rows = Vec::new();
            for (rn, row) in e
                .get("rows")
                .and_then(|v| v.as_arr())
                .ok_or_else(|| format!("{id}: missing rows"))?
                .iter()
                .enumerate()
            {
                let cells = row
                    .as_arr()
                    .ok_or_else(|| format!("{id} row {rn}: not an array"))?;
                if cells.len() != columns.len() {
                    return Err(format!(
                        "{id} row {rn}: {} cells for {} columns",
                        cells.len(),
                        columns.len()
                    ));
                }
                rows.push(
                    cells
                        .iter()
                        .map(|c| match c {
                            JsonValue::Num(s) => s.clone(),
                            JsonValue::Str(s) => s.clone(),
                            other => other.to_json(),
                        })
                        .collect(),
                );
            }
            let mut detectors = Vec::new();
            for d in e
                .get("detectors")
                .and_then(|v| v.as_arr())
                .ok_or_else(|| format!("{id}: missing detectors"))?
            {
                detectors.push(DetectorResult {
                    name: d
                        .get("name")
                        .and_then(|v| v.as_str())
                        .ok_or_else(|| format!("{id}: detector missing name"))?
                        .to_string(),
                    found: matches!(d.get("found"), Some(JsonValue::Bool(true))),
                    at: d
                        .get("at")
                        .and_then(|v| v.as_str())
                        .unwrap_or_default()
                        .to_string(),
                    details: d
                        .get("details")
                        .and_then(|v| v.as_str())
                        .unwrap_or_default()
                        .to_string(),
                });
            }
            experiments.push(ExperimentReport {
                id,
                table,
                columns,
                rows,
                detectors,
            });
        }
        Ok(RunReport { scale, experiments })
    }

    /// Render as a human-readable markdown scoreboard.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("# Run report ({})\n", self.scale);
        for e in &self.experiments {
            out.push_str(&format!("\n## {} — `{}`\n\n", e.id, e.table));
            out.push_str(&format!("| {} |\n", e.columns.join(" | ")));
            out.push_str(&format!(
                "|{}\n",
                e.columns.iter().map(|_| " --- |").collect::<String>()
            ));
            for row in &e.rows {
                out.push_str(&format!("| {} |\n", row.join(" | ")));
            }
            for d in &e.detectors {
                out.push_str(&format!(
                    "\n- **{}**: {}\n",
                    d.name,
                    if d.details.is_empty() {
                        if d.found {
                            "found"
                        } else {
                            "not found"
                        }
                    } else {
                        &d.details
                    }
                ));
            }
        }
        out
    }

    /// The column index named `col` in experiment `id`, if both exist.
    pub fn column(&self, id: &str, col: &str) -> Option<usize> {
        self.experiments
            .iter()
            .find(|e| e.id == id)?
            .columns
            .iter()
            .position(|c| c == col)
    }
}

/// First index along a monotone sweep where `y` exceeds `factor` times
/// the first point's `y` — the E13 contention-knee detector. Returns
/// `None` when the series never crosses or the baseline is zero.
pub fn detect_knee(ys: &[f64], factor: f64) -> Option<usize> {
    let y0 = *ys.first()?;
    if y0 <= 0.0 {
        return None;
    }
    ys.iter().position(|&y| y >= factor * y0)
}

/// Index of a strict interior extremum — `valley` picks the dip, used
/// for the E14 mid-band latency valley (a point lower than both
/// neighbours); inverted it would find a peak. Endpoints never qualify.
pub fn detect_valley(ys: &[f64]) -> Option<usize> {
    (1..ys.len().saturating_sub(1)).find(|&i| ys[i] < ys[i - 1] && ys[i] < ys[i + 1])
}

/// One compared cell in a report diff.
#[derive(Debug, Clone)]
pub struct DiffEntry {
    /// Experiment id.
    pub experiment: String,
    /// Row key (first cell of the row).
    pub row: String,
    /// Column name.
    pub column: String,
    /// Baseline cell value.
    pub base: String,
    /// Candidate cell value.
    pub new: String,
    /// Relative change `(new - base) / |base|` (`f64::INFINITY` when the
    /// baseline is zero and the candidate is not).
    pub rel_change: f64,
    /// Did this cell exceed the tolerance?
    pub regressed: bool,
}

/// The outcome of diffing two run reports.
#[derive(Debug, Clone, Default)]
pub struct ReportDiff {
    /// Cells that changed beyond the tolerance, plus structural
    /// mismatches (missing experiments/rows/columns).
    pub regressions: Vec<DiffEntry>,
    /// Cells that changed but stayed within tolerance.
    pub within_tolerance: Vec<DiffEntry>,
    /// Numeric cells compared.
    pub compared: usize,
}

impl ReportDiff {
    /// Overall verdict: any regression?
    pub fn regressed(&self) -> bool {
        !self.regressions.is_empty()
    }

    /// Human-readable verdict block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "compared {} cells: {} regressed, {} moved within tolerance\n",
            self.compared,
            self.regressions.len(),
            self.within_tolerance.len()
        ));
        for e in &self.regressions {
            out.push_str(&format!(
                "REGRESSION {}/{}/{}: {} -> {} ({:+.1}%)\n",
                e.experiment,
                e.row,
                e.column,
                e.base,
                e.new,
                e.rel_change * 100.0
            ));
        }
        for e in &self.within_tolerance {
            out.push_str(&format!(
                "ok {}/{}/{}: {} -> {} ({:+.1}%)\n",
                e.experiment,
                e.row,
                e.column,
                e.base,
                e.new,
                e.rel_change * 100.0
            ));
        }
        out.push_str(if self.regressed() {
            "verdict: REGRESSION\n"
        } else {
            "verdict: PASS\n"
        });
        out
    }
}

/// Compare candidate `new` against `base`: every numeric cell matched by
/// (experiment id, row key, column name) must stay within `tolerance`
/// relative change; missing experiments/rows/columns and detector
/// verdict flips count as regressions outright.
pub fn diff_reports(base: &RunReport, new: &RunReport, tolerance: f64) -> ReportDiff {
    let mut diff = ReportDiff::default();
    for be in &base.experiments {
        let Some(ne) = new.experiments.iter().find(|e| e.id == be.id) else {
            diff.regressions.push(DiffEntry {
                experiment: be.id.clone(),
                row: String::new(),
                column: String::new(),
                base: "present".into(),
                new: "missing".into(),
                rel_change: f64::INFINITY,
                regressed: true,
            });
            continue;
        };
        for brow in &be.rows {
            let key = brow.first().cloned().unwrap_or_default();
            let Some(nrow) = ne
                .rows
                .iter()
                .find(|r| r.first().map(|c| c.as_str()) == Some(key.as_str()))
            else {
                diff.regressions.push(DiffEntry {
                    experiment: be.id.clone(),
                    row: key,
                    column: String::new(),
                    base: "row present".into(),
                    new: "row missing".into(),
                    rel_change: f64::INFINITY,
                    regressed: true,
                });
                continue;
            };
            for (ci, col) in be.columns.iter().enumerate() {
                let Some(nci) = ne.columns.iter().position(|c| c == col) else {
                    continue;
                };
                let (bcell, ncell) = (&brow[ci], &nrow[nci]);
                let (Ok(bv), Ok(nv)) = (bcell.parse::<f64>(), ncell.parse::<f64>()) else {
                    continue;
                };
                diff.compared += 1;
                if bv == nv {
                    continue;
                }
                let rel = if bv == 0.0 {
                    f64::INFINITY
                } else {
                    (nv - bv) / bv.abs()
                };
                let entry = DiffEntry {
                    experiment: be.id.clone(),
                    row: key.clone(),
                    column: col.clone(),
                    base: bcell.clone(),
                    new: ncell.clone(),
                    rel_change: rel,
                    regressed: rel.abs() > tolerance,
                };
                if entry.regressed {
                    diff.regressions.push(entry);
                } else {
                    diff.within_tolerance.push(entry);
                }
            }
        }
        for bd in &be.detectors {
            if let Some(nd) = ne.detectors.iter().find(|d| d.name == bd.name) {
                if nd.found != bd.found {
                    diff.regressions.push(DiffEntry {
                        experiment: be.id.clone(),
                        row: format!("detector:{}", bd.name),
                        column: "found".into(),
                        base: bd.found.to_string(),
                        new: nd.found.to_string(),
                        rel_change: f64::INFINITY,
                        regressed: true,
                    });
                }
            }
        }
    }
    diff
}

/// Split a CSV produced by the bench `Table` writer (no quoting, no
/// embedded commas) into `(headers, rows)`.
pub fn parse_csv(text: &str) -> (Vec<String>, Vec<Vec<String>>) {
    let mut lines = text.lines();
    let headers = lines
        .next()
        .map(|h| h.split(',').map(str::to_string).collect())
        .unwrap_or_default();
    let rows = lines
        .filter(|l| !l.is_empty())
        .map(|l| l.split(',').map(str::to_string).collect())
        .collect();
    (headers, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            scale: "smoke".into(),
            experiments: vec![ExperimentReport {
                id: "e13".into(),
                table: "e13_hybrid".into(),
                columns: vec!["pressure".into(), "p99_us".into(), "label".into()],
                rows: vec![
                    vec!["0".into(), "10.5".into(), "base".into()],
                    vec!["50".into(), "42.0".into(), "mid".into()],
                ],
                detectors: vec![DetectorResult {
                    name: "contention-knee".into(),
                    found: true,
                    at: "50".into(),
                    details: "p99 crossed 1.5x baseline at pressure 50".into(),
                }],
            }],
        }
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let r = sample();
        let json = r.to_json();
        let back = RunReport::from_json(&json).expect("parse");
        assert_eq!(back, r);
        assert_eq!(back.to_json(), json, "re-render is byte-identical");
    }

    #[test]
    fn schema_violations_are_rejected() {
        assert!(RunReport::from_json("{}").is_err());
        assert!(RunReport::from_json("{\"schema\":\"wrong\"}").is_err());
        let ragged = sample().to_json().replace("\"base\"],", "],");
        assert!(
            RunReport::from_json(&ragged).is_err(),
            "ragged row rejected"
        );
    }

    #[test]
    fn number_tokens_survive_verbatim() {
        let json = "{\"a\":[1.230e6,0.5,-3,\"x\"]}";
        let v = parse_json(json).expect("parse");
        assert_eq!(v.to_json(), json);
    }

    #[test]
    fn is_json_number_is_strict() {
        for good in ["0", "-1", "12.5", "1.234e6", "3e-2", "0.500"] {
            assert!(is_json_number(good), "{good}");
        }
        for bad in ["", "01", "+1", ".5", "1.", "1e", "nan", "inf", "1 "] {
            assert!(!is_json_number(bad), "{bad}");
        }
    }

    #[test]
    fn knee_and_valley_detectors() {
        assert_eq!(detect_knee(&[10.0, 11.0, 16.0, 40.0], 1.5), Some(2));
        assert_eq!(detect_knee(&[10.0, 11.0, 12.0], 1.5), None);
        assert_eq!(detect_knee(&[0.0, 5.0], 1.5), None, "zero baseline");
        assert_eq!(detect_valley(&[5.0, 2.0, 7.0]), Some(1));
        assert_eq!(detect_valley(&[5.0, 6.0, 7.0]), None);
        assert_eq!(detect_valley(&[1.0, 9.0]), None, "endpoints excluded");
    }

    #[test]
    fn identical_reports_diff_clean() {
        let d = diff_reports(&sample(), &sample(), 0.0);
        assert!(!d.regressed());
        assert!(d.compared > 0);
        assert!(d.render().contains("verdict: PASS"));
    }

    #[test]
    fn tolerance_gate_fires_on_big_moves_only() {
        let base = sample();
        let mut new = sample();
        new.experiments[0].rows[1][1] = "46.0".into(); // +9.5%
        let d = diff_reports(&base, &new, 0.10);
        assert!(!d.regressed(), "within 10%");
        assert_eq!(d.within_tolerance.len(), 1);
        new.experiments[0].rows[1][1] = "63.0".into(); // +50%
        let d = diff_reports(&base, &new, 0.10);
        assert!(d.regressed());
        assert!(d.render().contains("REGRESSION e13/50/p99_us"));
    }

    #[test]
    fn structural_and_detector_mismatches_regress() {
        let base = sample();
        let mut new = sample();
        new.experiments[0].rows.remove(1);
        new.experiments[0].detectors[0].found = false;
        let d = diff_reports(&base, &new, 1.0);
        assert!(d.regressed());
        assert!(d.regressions.iter().any(|e| e.new == "row missing"));
        assert!(d
            .regressions
            .iter()
            .any(|e| e.row == "detector:contention-knee"));
    }

    #[test]
    fn markdown_scoreboard_renders_tables_and_detectors() {
        let md = sample().to_markdown();
        assert!(md.contains("## e13 — `e13_hybrid`"));
        assert!(md.contains("| pressure | p99_us | label |"));
        assert!(md.contains("**contention-knee**"));
    }

    #[test]
    fn csv_parse_splits_headers_and_rows() {
        let (h, r) = parse_csv("a,b\n1,2\n3,4\n");
        assert_eq!(h, vec!["a", "b"]);
        assert_eq!(r, vec![vec!["1", "2"], vec!["3", "4"]]);
    }
}
