//! Determinism guarantees: the entire pipeline — workload generation,
//! functional execution, timing, energy — is a pure function of the seed.
//! Every number in EXPERIMENTS.md relies on this.

use bionic_core::config::EngineConfig;
use bionic_core::engine::Engine;
use bionic_core::Category;
use bionic_sim::time::SimTime;
use bionic_workloads::tatp::{self, TatpConfig, TatpGenerator};

fn run(engine_seed: u64, workload_seed: u64) -> (u64, u64, u64, f64, u64) {
    let wl = TatpConfig {
        subscribers: 2_000,
        seed: workload_seed,
    };
    let mut engine = Engine::new(EngineConfig::bionic().with_seed(engine_seed));
    let tables = tatp::load(&mut engine, &wl);
    let mut generator = TatpGenerator::new(wl, tables);
    let mut at = SimTime::ZERO;
    for _ in 0..1_000 {
        let (_, prog) = generator.next();
        engine.submit(&prog, at);
        at += SimTime::from_us(2.0);
    }
    (
        engine.stats.committed,
        engine.stats.last_completion.as_ps(),
        engine.breakdown.get(Category::Btree).as_ps(),
        engine.platform.energy.total().as_j(),
        engine.stats.latency.quantile(0.99).as_ps(),
    )
}

#[test]
fn identical_seeds_give_bit_identical_results() {
    let a = run(1, 2);
    let b = run(1, 2);
    assert_eq!(a, b);
}

#[test]
fn engine_seed_changes_timing_but_not_function() {
    // The engine seed drives the probabilistic cache model: timing and
    // energy move, functional outcomes (commit counts) do not.
    let a = run(1, 2);
    let b = run(99, 2);
    assert_eq!(a.0, b.0, "commit count is functional");
    // Completion time is quantized by group-commit boundaries; the
    // stall-sensitive measures (breakdown, energy) must move with the seed.
    assert_ne!(
        (a.2, a.3.to_bits()),
        (b.2, b.3.to_bits()),
        "cache-model timing must depend on the platform seed"
    );
}

#[test]
fn workload_seed_changes_everything() {
    let a = run(1, 2);
    let b = run(1, 3);
    assert_ne!((a.1, a.3.to_bits()), (b.1, b.3.to_bits()));
}

/// The parallel figure harness must not leak scheduling order into
/// results: running an experiment subset over the full
/// jobs ∈ {1, 4} × shards ∈ {1, 2, 8} matrix produces the same CSV bytes
/// in every configuration. The subset covers every sharding shape: E5
/// (model-range shards with a row-reassembling merge), E7 (part-range
/// shards under the default concat merge), E10 (sweep-point shards), E12
/// (config-range shards with a ratio-computing merge), plus E4, E13, and
/// E14. E13 is an interesting member: its cells each carry a private
/// contention arbiter, so any shared mutable state would show up here as
/// a byte diff in `e13_hybrid.csv`. E14 is the other: each of its cells
/// owns a seeded fault injector and per-unit circuit breakers, so a
/// nondeterministic RNG draw or a wall-clock leak into breaker timing
/// would diff `e14_brownout.csv`. E15 runs every cell twice — a static
/// arm and one with the adaptive placement controller armed — so a
/// controller decision that depended on anything but the sim-time
/// window grid would diff `e15_adaptive.csv`. E16 drives whole clusters —
/// per-node engines, the seeded interconnect's per-link fault substreams,
/// and the 2PC driver — so any cross-link RNG coupling or driver-order
/// leak would diff `e16_cluster.csv`. `harness_timing.csv` is the single file
/// allowed to differ (it reports wall-clock, which is the point of the
/// parallelism). The run report (`report.json` / `report.md`) is built
/// from each configuration's CSVs and compared too, so the scoreboard a
/// CI baseline diffs against inherits the same guarantee — including the
/// knee/valley detector verdicts and the attribution/window tables they
/// summarize.
#[test]
fn harness_results_are_independent_of_jobs_and_shards() {
    use bionic_bench::experiments::{build, Scale};
    use bionic_bench::harness;

    let base = std::env::temp_dir().join(format!("bionic_determinism_{}", std::process::id()));
    let mut per_config: Vec<std::collections::BTreeMap<String, Vec<u8>>> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    for jobs in [1usize, 4] {
        for shards in [1usize, 2, 8] {
            let dir = base.join(format!("jobs{jobs}_shards{shards}"));
            let experiments = ["e4", "e5", "e7", "e10", "e12", "e13", "e14", "e15", "e16"]
                .into_iter()
                .map(|id| build(id, Scale::Smoke, shards).expect("known id"))
                .collect();
            let timing = harness::run(experiments, jobs, &dir);
            timing.table().save_and_print(&dir, "harness_timing");
            let report = bionic_bench::report::build_report(&dir, "smoke").expect("report builds");
            bionic_bench::report::write_report(&dir, &report).expect("report writes");
            let mut csvs = std::collections::BTreeMap::new();
            for entry in std::fs::read_dir(&dir).expect("results dir") {
                let path = entry.expect("dir entry").path();
                let name = path.file_name().unwrap().to_string_lossy().into_owned();
                if name == "harness_timing.csv" {
                    continue;
                }
                csvs.insert(name, std::fs::read(&path).expect("read csv"));
            }
            assert!(!csvs.is_empty(), "harness produced no CSVs");
            assert!(
                csvs.contains_key("e13_hybrid.csv"),
                "E13 must write e13_hybrid.csv"
            );
            assert!(
                csvs.contains_key("e14_brownout.csv"),
                "E14 must write e14_brownout.csv"
            );
            assert!(
                csvs.contains_key("e15_adaptive.csv"),
                "E15 must write e15_adaptive.csv"
            );
            assert!(
                csvs.contains_key("e16_cluster.csv"),
                "E16 must write e16_cluster.csv"
            );
            assert!(
                csvs.contains_key("report.json"),
                "the run report must land next to the CSVs"
            );
            per_config.push(csvs);
            labels.push(format!("jobs={jobs} shards={shards}"));
        }
    }
    let a = &per_config[0];
    for (b, label) in per_config[1..].iter().zip(&labels[1..]) {
        assert_eq!(
            a.keys().collect::<Vec<_>>(),
            b.keys().collect::<Vec<_>>(),
            "same set of CSV files at {label}"
        );
        for (name, bytes) in a {
            assert_eq!(
                bytes, &b[name],
                "{name} must be byte-identical at {label} vs {}",
                labels[0]
            );
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// The telemetry layer must share the harness's guarantee: trace JSON,
/// utilization, and metrics artifacts are byte-identical whether the
/// traced cells ran serially or on 4 worker threads. Sim-time-only
/// timestamps and fully specified export ordering make this hold.
/// (`--shards` has no axis here by construction: a traced run is one
/// serial simulation that bypasses the sharded cell harness, since
/// splitting it would change the recorded span interleaving itself —
/// so job count is the only knob that could leak into trace bytes.)
#[test]
fn trace_artifacts_are_independent_of_job_count() {
    use bionic_bench::trace::run_traced;

    let base = std::env::temp_dir().join(format!("bionic_trace_det_{}", std::process::id()));
    let mut per_jobs: Vec<std::collections::BTreeMap<String, Vec<u8>>> = Vec::new();
    for jobs in [1usize, 4] {
        let dir = base.join(format!("jobs{jobs}"));
        let written = run_traced(&dir, jobs).expect("trace export");
        assert!(!written.is_empty());
        let mut files = std::collections::BTreeMap::new();
        for path in written {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            files.insert(name, std::fs::read(&path).expect("read artifact"));
        }
        per_jobs.push(files);
    }
    let (a, b) = (&per_jobs[0], &per_jobs[1]);
    assert_eq!(
        a.keys().collect::<Vec<_>>(),
        b.keys().collect::<Vec<_>>(),
        "same artifact set for any --jobs"
    );
    for (name, bytes) in a {
        assert_eq!(
            bytes, &b[name],
            "{name} must be byte-identical across --jobs"
        );
    }
    // Spot-check the shape: the trace is Perfetto-loadable JSON and the
    // utilization CSV names every §5 unit.
    let trace = std::str::from_utf8(&a["trace_tatp.json"]).unwrap();
    bionic_telemetry::validate_chrome_trace(trace).expect("schema-valid");
    let util = std::str::from_utf8(&a["utilization_tatp.csv"]).unwrap();
    for unit in bionic_telemetry::UNIT_NAMES {
        assert!(util.contains(&format!("fpga/{unit},")), "missing {unit}");
    }
    let _ = std::fs::remove_dir_all(&base);
}
