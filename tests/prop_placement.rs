//! Property tests for the adaptive placement controller.
//!
//! Three contracts, each load-bearing for the E15 experiment and the
//! byte-identity guarantees the determinism suite pins:
//!
//! 1. **Determinism** — the decision stream is a pure function of the
//!    observed signal sequence; two controllers fed the same snapshots
//!    at the same sim times agree on every decision and report field.
//! 2. **No flapping** — a unit's routing changes only on window
//!    boundaries (at most one transition per unit per window), and once
//!    forced to software it dwells there for at least the configured
//!    clear/hold hysteresis before restoring.
//! 3. **Inert controllers change nothing** — an armed controller whose
//!    thresholds can never be met ([`PlacementConfig::never_trips`])
//!    leaves every engine statistic bit-identical to running with no
//!    controller at all: observation is read-only.

use bionic_core::config::EngineConfig;
use bionic_core::engine::Engine;
use bionic_core::placement::{PlacementConfig, PlacementController, PlacementSignals, UNIT_COUNT};
use bionic_core::Category;
use bionic_sim::time::SimTime;
use bionic_workloads::tatp::{self, TatpConfig, TatpGenerator};
use proptest::prelude::*;

/// One randomized observation step: how far sim time advances (in
/// quarter-windows, so boundary-straddling and mid-window no-op calls
/// both occur) and the per-window increments applied to every signal.
#[derive(Debug, Clone)]
struct Step {
    quarter_windows: u64,
    queued_ps: u64,
    olap_bytes: u64,
    ops: [u64; UNIT_COUNT],
    retries: [u64; UNIT_COUNT],
    fallbacks: [u64; UNIT_COUNT],
    opens: [u64; UNIT_COUNT],
}

/// One `0..=max` draw per hardware unit.
fn unit_array(max: u64) -> impl Strategy<Value = [u64; UNIT_COUNT]> {
    (0..=max, 0..=max, 0..=max, 0..=max, 0..=max).prop_map(|(a, b, c, d, e)| [a, b, c, d, e])
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (
        (
            1u64..=12,
            0u64..=400_000_000, // up to 400 µs of queueing per step
            0u64..=4_000_000,   // up to 40 000 B/µs of scan draw per step
        ),
        unit_array(200),
        unit_array(30),
        unit_array(30),
        unit_array(1),
    )
        .prop_map(
            |((quarter_windows, queued_ps, olap_bytes), ops, retries, fallbacks, opens)| Step {
                quarter_windows,
                queued_ps,
                olap_bytes,
                ops,
                retries,
                fallbacks,
                opens,
            },
        )
}

/// Drive a fresh controller through `steps`, returning it for
/// inspection. Signals accumulate monotonically, as the engine's do.
fn drive(cfg: PlacementConfig, steps: &[Step]) -> PlacementController {
    let mut c = PlacementController::new(cfg.clone());
    let mut s = PlacementSignals::default();
    let mut now = SimTime::ZERO;
    c.observe(now, s);
    let quarter = SimTime::from_ps(cfg.window.as_ps() / 4);
    for st in steps {
        now += quarter * st.quarter_windows;
        s.oltp_queued_ps += st.queued_ps;
        s.sg_olap_bytes += st.olap_bytes;
        s.committed += 7;
        for u in 0..UNIT_COUNT {
            s.unit_ops[u] += st.ops[u];
            s.unit_retries[u] += st.retries[u];
            s.unit_fallbacks[u] += st.fallbacks[u];
            s.breaker_opens[u] += st.opens[u];
        }
        c.observe(now, s);
    }
    c
}

/// Configurations worth fuzzing: the calibrated default and a twitchy
/// variant with every unit opted in and minimal hysteresis, which
/// maximizes the chance of surfacing a flapping bug.
fn config_strategy() -> impl Strategy<Value = PlacementConfig> {
    prop_oneof![
        Just(PlacementConfig::default()),
        Just(PlacementConfig {
            shed_trip_windows: 1,
            shed_clear_windows: 1,
            fault_trip_windows: 1,
            hold_windows: 2,
            shed_units: [true; UNIT_COUNT],
            brownout_units: [true; UNIT_COUNT],
            ..PlacementConfig::default()
        }),
    ]
}

/// Body of `same_inputs_give_same_decisions`: same signal sequence in,
/// same decision stream out — bit for bit.
fn check_determinism(cfg: PlacementConfig, steps: &[Step]) -> Result<(), TestCaseError> {
    let a = drive(cfg.clone(), steps);
    let b = drive(cfg, steps);
    prop_assert_eq!(a.decisions(), b.decisions());
    prop_assert_eq!(a.report(), b.report());
    Ok(())
}

/// Body of `no_flapping_within_the_hysteresis`: per unit, at most one
/// transition per observation window, and a forced-to-software unit
/// dwells at least the smaller of the clear-streak and brownout-hold
/// hysteresis before restoring.
fn check_no_flapping(cfg: PlacementConfig, steps: &[Step]) -> Result<(), TestCaseError> {
    let min_dwell = cfg.shed_clear_windows.min(cfg.hold_windows) as u64;
    let c = drive(cfg, steps);
    for unit in 0..UNIT_COUNT {
        let unit_decisions: Vec<_> = c.decisions().iter().filter(|d| d.unit == unit).collect();
        for pair in unit_decisions.windows(2) {
            prop_assert!(
                pair[0].window != pair[1].window,
                "unit {} changed routing twice in window {}",
                unit,
                pair[0].window
            );
            prop_assert!(
                pair[0].forced_sw != pair[1].forced_sw,
                "unit {} logged two identical transitions",
                unit
            );
            if pair[0].forced_sw && !pair[1].forced_sw {
                prop_assert!(
                    pair[1].window - pair[0].window >= min_dwell,
                    "unit {} restored after {} windows (< dwell {})",
                    unit,
                    pair[1].window - pair[0].window,
                    min_dwell
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn same_inputs_give_same_decisions(
        cfg in config_strategy(),
        steps in proptest::collection::vec(step_strategy(), 1..60),
    ) {
        check_determinism(cfg, &steps)?;
    }

    #[test]
    fn no_flapping_within_the_hysteresis(
        cfg in config_strategy(),
        steps in proptest::collection::vec(step_strategy(), 1..60),
    ) {
        check_no_flapping(cfg, &steps)?;
    }
}

/// Run a seeded TATP slice and fingerprint every statistic that timing,
/// energy, or functional divergence would move.
fn engine_fingerprint(cfg: EngineConfig, seed: u64) -> (u64, u64, u64, u64, u64) {
    let wl = TatpConfig {
        subscribers: 2_000,
        seed,
    };
    let mut engine = Engine::new(cfg);
    let tables = tatp::load(&mut engine, &wl);
    let mut generator = TatpGenerator::new(wl, tables);
    let mut at = SimTime::ZERO;
    for _ in 0..600 {
        let (_, prog) = generator.next();
        engine.submit(&prog, at);
        at += SimTime::from_us(2.0);
    }
    (
        engine.stats.committed,
        engine.stats.last_completion.as_ps(),
        engine.breakdown.get(Category::Btree).as_ps(),
        engine.platform.energy.total().as_j().to_bits(),
        engine.stats.latency.quantile(0.99).as_ps(),
    )
}

/// Arming a controller with `cfg` must be byte-identical to not arming
/// one on this workload: the observation path reads ledgers, it never
/// prices.
fn check_engine_identity(cfg: PlacementConfig, seed: u64) -> Result<(), TestCaseError> {
    let disabled = engine_fingerprint(EngineConfig::bionic(), seed);
    let armed = engine_fingerprint(EngineConfig::bionic().with_placement(cfg), seed);
    prop_assert_eq!(disabled, armed);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // A controller that can never trip perturbs nothing.
    #[test]
    fn armed_but_inert_controller_is_byte_identical(seed in 0u64..1_000) {
        check_engine_identity(PlacementConfig::never_trips(), seed)?;
    }

    // The calibrated default also stays inert on a scan-free workload:
    // the contention rule requires an active scanner and the fault rule
    // a fault, and this workload has neither.
    #[test]
    fn default_controller_is_inert_without_scans_or_faults(seed in 0u64..1_000) {
        check_engine_identity(PlacementConfig::default(), seed)?;
    }
}
