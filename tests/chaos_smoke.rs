//! Cross-crate smoke test: a handful of crash-torture schedules must pass
//! the differential recovery oracle from the umbrella package, proving the
//! chaos harness composes with the released engine surface. The heavy
//! 64-seed matrix lives in `crates/chaos/tests/torture.rs`; this keeps a
//! tier-1 canary over the same machinery.

use bionic_chaos::{run_plan, run_plan_catching, FaultPlan};

#[test]
fn torture_canary_seeds_hold_the_oracle() {
    // One seed per interesting corner: TATP + TPC-C, mid-transaction
    // crash, torn tail, checkpointing, and a quiescent no-crash run.
    for seed in [0u64, 1, 2, 3, 8, 13] {
        let plan = FaultPlan::from_seed(seed);
        run_plan_catching(&plan)
            .unwrap_or_else(|msg| panic!("seed {seed}: {msg}\n  plan: {}", plan.serialize()));
    }
}

#[test]
fn a_seed_reruns_byte_identically() {
    let plan = FaultPlan::from_seed(2);
    let a = run_plan(&plan).expect("oracle holds");
    let b = run_plan(&plan).expect("oracle holds");
    assert_eq!(a, b);
}
