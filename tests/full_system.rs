//! Cross-crate integration tests: full workloads through the full engine,
//! with functional verification against shadow state, crash/recovery in
//! mid-flight, and TPC-C money-conservation invariants.

use bionic_core::config::EngineConfig;
use bionic_core::engine::Engine;
use bionic_sim::time::SimTime;
use bionic_workloads::tatp::{self, layout as tatp_layout, TatpConfig, TatpGenerator, TatpTxn};
use bionic_workloads::tpcc::{self, keys, layout as tpcc_layout, TpccConfig, TpccTxn, DISTRICTS};

fn read_i64(engine: &mut Engine, table: u32, key: i64, offset: usize) -> i64 {
    let rec = engine.read_row(table, key).expect("row exists");
    i64::from_le_bytes(rec[offset..offset + 8].try_into().unwrap())
}

#[test]
fn tatp_commit_abort_decisions_are_config_independent() {
    // The same transaction stream must make identical commit/abort
    // decisions on every engine configuration — timing models must never
    // leak into functional outcomes.
    let mut decisions: Vec<Vec<bool>> = Vec::new();
    for cfg in [
        EngineConfig::software(),
        EngineConfig::bionic(),
        EngineConfig::conventional(),
    ] {
        let wl = TatpConfig::small();
        let mut engine = Engine::new(cfg);
        let tables = tatp::load(&mut engine, &wl);
        let mut generator = TatpGenerator::new(wl, tables);
        let mut outcomes = Vec::new();
        let mut at = SimTime::ZERO;
        for _ in 0..1_500 {
            let (_, prog) = generator.next();
            outcomes.push(engine.submit(&prog, at).is_committed());
            at += SimTime::from_us(3.0);
        }
        decisions.push(outcomes);
    }
    assert_eq!(decisions[0], decisions[1], "software vs bionic");
    assert_eq!(decisions[0], decisions[2], "software vs conventional");
}

#[test]
fn tatp_update_location_state_matches_shadow() {
    let wl = TatpConfig::small();
    let mut engine = Engine::new(EngineConfig::bionic());
    let tables = tatp::load(&mut engine, &wl);
    let mut generator = TatpGenerator::new(wl.clone(), tables);
    // Shadow of committed vlr_locations, reconstructed from the programs.
    let mut shadow: std::collections::HashMap<i64, i64> = std::collections::HashMap::new();
    let mut at = SimTime::ZERO;
    for _ in 0..1_000 {
        let prog = generator.program(TatpTxn::UpdateLocation);
        // Extract (key, new location) from the program itself.
        let bionic_core::ops::Op::Update { key, patch, .. } = &prog.phases[0][0].ops[1] else {
            panic!("UpdateLocation shape changed")
        };
        let bionic_core::ops::Patch::Splice { bytes, .. } = patch else {
            panic!("UpdateLocation patch shape changed")
        };
        let loc = i64::from_le_bytes(bytes[..8].try_into().unwrap());
        if engine.submit(&prog, at).is_committed() {
            shadow.insert(*key, loc);
        }
        at += SimTime::from_us(3.0);
    }
    assert!(shadow.len() > 300, "enough distinct subscribers touched");
    for (&s_id, &loc) in &shadow {
        let got = read_i64(
            &mut engine,
            tables.subscriber,
            s_id,
            tatp_layout::SUB_VLR_LOCATION,
        );
        assert_eq!(got, loc, "subscriber {s_id}");
    }
}

#[test]
fn crash_mid_tatp_preserves_every_committed_update() {
    let wl = TatpConfig::small();
    let mut engine = Engine::new(EngineConfig::software());
    let tables = tatp::load(&mut engine, &wl);
    let mut generator = TatpGenerator::new(wl, tables);
    let mut shadow: std::collections::HashMap<i64, i64> = std::collections::HashMap::new();
    let mut at = SimTime::ZERO;
    for _ in 0..800 {
        let prog = generator.program(TatpTxn::UpdateLocation);
        let bionic_core::ops::Op::Update { key, patch, .. } = &prog.phases[0][0].ops[1] else {
            unreachable!()
        };
        let bionic_core::ops::Patch::Splice { bytes, .. } = patch else {
            unreachable!()
        };
        let loc = i64::from_le_bytes(bytes[..8].try_into().unwrap());
        if engine.submit(&prog, at).is_committed() {
            shadow.insert(*key, loc);
        }
        at += SimTime::from_us(3.0);
    }

    // Pull the plug. Nothing was explicitly flushed.
    let image = engine.crash();
    let (mut engine, outcome) = Engine::restart(image, EngineConfig::software());
    assert!(outcome.losers.is_empty(), "all submitted txns had finished");
    for (&s_id, &loc) in &shadow {
        let got = read_i64(&mut engine, 0, s_id, tatp_layout::SUB_VLR_LOCATION);
        assert_eq!(got, loc, "subscriber {s_id} lost its committed update");
    }
}

#[test]
fn tpcc_money_conservation_and_row_accounting() {
    let wl = TpccConfig::small();
    let mut engine = Engine::new(EngineConfig::software());
    let (tables, mut generator) = tpcc::load(&mut engine, &wl);

    let initial_orders = engine.row_count(tables.order);
    let initial_neworders = engine.row_count(tables.neworder);

    let mut committed_neworders = 0u64;
    let mut committed_payments = 0u64;
    let mut committed_deliveries = 0u64;
    let mut at = SimTime::ZERO;
    for _ in 0..600 {
        let (ty, prog) = generator.next();
        let ok = engine.submit(&prog, at).is_committed();
        at += SimTime::from_us(40.0);
        if ok {
            match ty {
                TpccTxn::NewOrder => committed_neworders += 1,
                TpccTxn::Payment => committed_payments += 1,
                TpccTxn::Delivery => committed_deliveries += 1,
                _ => {}
            }
        }
    }
    assert!(committed_neworders > 100);
    assert!(committed_payments > 100);

    // Money conservation: every Payment added its amount to BOTH the
    // warehouse ytd and one of its districts' ytd (all start at zero, and
    // 1 warehouse means remote-district payments stay in-warehouse).
    let w_ytd = read_i64(&mut engine, tables.warehouse, 0, tpcc_layout::W_YTD);
    let mut d_ytd_sum = 0i64;
    for d in 0..DISTRICTS {
        d_ytd_sum += read_i64(
            &mut engine,
            tables.district,
            keys::district(0, d),
            tpcc_layout::D_YTD,
        );
    }
    assert_eq!(w_ytd, d_ytd_sum, "warehouse vs district ytd");
    assert!(w_ytd > 0);

    // Row accounting: orders grow by committed NewOrders; new-order rows
    // grow by NewOrders and shrink by 10 per committed Delivery (when all
    // districts had pending orders).
    assert_eq!(
        engine.row_count(tables.order),
        initial_orders + committed_neworders as usize
    );
    let neworders = engine.row_count(tables.neworder);
    assert!(
        neworders <= initial_neworders + committed_neworders as usize,
        "deliveries must drain the new-order table"
    );
    assert!(
        committed_deliveries == 0 || neworders < initial_neworders + committed_neworders as usize
    );

    // History rows match committed payments exactly.
    assert_eq!(
        engine.row_count(tables.history),
        committed_payments as usize
    );
}

#[test]
fn tpcc_survives_crash_with_consistency_intact() {
    let wl = TpccConfig::small();
    let mut engine = Engine::new(EngineConfig::software());
    let (tables, mut generator) = tpcc::load(&mut engine, &wl);
    let mut at = SimTime::ZERO;
    for _ in 0..300 {
        let (_, prog) = generator.next();
        engine.submit(&prog, at);
        at += SimTime::from_us(40.0);
    }
    let orders_before = engine.row_count(tables.order);
    let history_before = engine.row_count(tables.history);

    let image = engine.crash();
    let (mut engine, outcome) = Engine::restart(image, EngineConfig::software());
    assert!(outcome.losers.is_empty());

    assert_eq!(engine.row_count(tables.order), orders_before);
    assert_eq!(engine.row_count(tables.history), history_before);
    // Money conservation still holds after recovery.
    let w_ytd = read_i64(&mut engine, tables.warehouse, 0, tpcc_layout::W_YTD);
    let mut d_sum = 0i64;
    for d in 0..DISTRICTS {
        d_sum += read_i64(
            &mut engine,
            tables.district,
            keys::district(0, d),
            tpcc_layout::D_YTD,
        );
    }
    assert_eq!(w_ytd, d_sum);

    // And the recovered engine still runs the workload.
    let (_, prog) = generator.next();
    let out = engine.submit(&prog, SimTime::ZERO);
    assert!(out.latency() > SimTime::ZERO);
}

#[test]
fn double_crash_recovery_is_idempotent_at_engine_level() {
    // Crash, recover, crash again immediately, recover again: state
    // identical both times (recovery itself is crash-safe).
    let wl = TatpConfig::small();
    let mut engine = Engine::new(EngineConfig::software());
    let tables = tatp::load(&mut engine, &wl);
    let mut generator = TatpGenerator::new(wl, tables);
    let mut at = SimTime::ZERO;
    for _ in 0..400 {
        let (_, prog) = generator.next();
        engine.submit(&prog, at);
        at += SimTime::from_us(3.0);
    }
    let witness = engine.read_row(tables.subscriber, 1).unwrap();

    let image = engine.crash();
    let (engine1, first) = Engine::restart(image, EngineConfig::software());
    let rows1 = engine1.row_count(tables.call_forwarding);
    // Immediate second crash: recovery's CLRs/Ends were flushed by restart?
    // They are appended but not necessarily flushed — flush happens on the
    // next commit. The durable prefix alone must still recover cleanly.
    let image2 = engine1.crash();
    let (mut engine2, second) = Engine::restart(image2, EngineConfig::software());
    assert_eq!(engine2.row_count(tables.call_forwarding), rows1);
    assert_eq!(
        engine2.read_row(tables.subscriber, 1).unwrap(),
        witness,
        "subscriber state identical across double crash"
    );
    assert!(second.undone <= first.undone);
}

#[test]
fn checkpointed_engine_recovers_with_truncated_log() {
    let wl = TatpConfig::small();
    let mut engine = Engine::new(EngineConfig::software());
    let tables = tatp::load(&mut engine, &wl);
    let mut generator = TatpGenerator::new(wl, tables);
    let mut at = SimTime::ZERO;
    for _ in 0..300 {
        let (_, prog) = generator.next();
        engine.submit(&prog, at);
        at += SimTime::from_us(3.0);
    }
    engine.checkpoint(at);
    assert!(engine.log().base_lsn() > 0, "checkpoint truncates the log");
    for _ in 0..100 {
        let (_, prog) = generator.next();
        engine.submit(&prog, at);
        at += SimTime::from_us(3.0);
    }
    let witness = engine.read_row(tables.subscriber, 1).unwrap();
    let image = engine.crash();
    let (mut engine, outcome) = Engine::restart(image, EngineConfig::software());
    assert!(outcome.losers.is_empty());
    assert_eq!(engine.read_row(tables.subscriber, 1).unwrap(), witness);
    // And it keeps serving.
    let (_, prog) = generator.next();
    engine.submit(&prog, SimTime::ZERO);
}

#[test]
fn bionic_is_cheaper_per_txn_on_both_workloads() {
    // The repository's headline, as an always-on regression test.
    for workload in ["tatp", "tpcc"] {
        let mut joules = Vec::new();
        for cfg in [EngineConfig::software(), EngineConfig::bionic()] {
            let mut engine = Engine::new(cfg);
            let report = if workload == "tatp" {
                let wl = TatpConfig::small();
                let tables = tatp::load(&mut engine, &wl);
                let mut g = TatpGenerator::new(wl, tables);
                bionic_workloads::run(&mut engine, 1_000, SimTime::from_us(3.0), || {
                    let (t, p) = g.next();
                    (t.label(), p)
                })
            } else {
                let wl = TpccConfig::small();
                let (_, mut g) = tpcc::load(&mut engine, &wl);
                bionic_workloads::run(&mut engine, 400, SimTime::from_us(40.0), || {
                    let (t, p) = g.next();
                    (t.label(), p)
                })
            };
            assert!(report.committed > 0);
            joules.push(report.joules_per_txn);
        }
        assert!(
            joules[1] < 0.8 * joules[0],
            "{workload}: bionic {} vs software {}",
            joules[1],
            joules[0]
        );
    }
}
