//! Property tests over the workload generators and the fluid queueing
//! model: every generated program must be well-formed and executable, and
//! the queueing approximation must respect basic queueing-theory laws.

use bionic_core::ops::{Op, TxnProgram};
use bionic_dbms::sim::server::FluidQueue;
use bionic_dbms::sim::time::SimTime;
use bionic_workloads::tatp::{self, TatpConfig, TatpGenerator};
use bionic_workloads::tpcc::{self, TpccConfig};
use proptest::prelude::*;

fn check_program_well_formed(prog: &TxnProgram, n_tables: u32) {
    assert!(!prog.phases.is_empty(), "{}: empty program", prog.name);
    for phase in &prog.phases {
        assert!(!phase.is_empty(), "{}: empty phase", prog.name);
        for action in phase {
            assert!(action.table < n_tables, "{}: bad table", prog.name);
            assert!(!action.ops.is_empty(), "{}: empty action", prog.name);
            for op in &action.ops {
                let t = match op {
                    Op::Read { table, .. }
                    | Op::ReadRange { table, .. }
                    | Op::Update { table, .. }
                    | Op::Insert { table, .. }
                    | Op::Delete { table, .. }
                    | Op::SecondaryRead { table, .. } => *table,
                    Op::Compute { instructions } => {
                        assert!(*instructions > 0);
                        continue;
                    }
                };
                assert!(t < n_tables, "{}: op on bad table {t}", prog.name);
                if let Op::ReadRange { lo, hi, limit, .. } = op {
                    assert!(lo <= hi, "{}: inverted range", prog.name);
                    assert!(*limit > 0, "{}: zero-limit range", prog.name);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn tatp_programs_are_always_well_formed(seed in any::<u64>()) {
        let cfg = TatpConfig { subscribers: 500, seed };
        // Build the generator against a real engine so table ids are real.
        let mut engine = bionic_core::engine::Engine::new(
            bionic_core::config::EngineConfig::software().with_agents(4),
        );
        let tables = tatp::load(&mut engine, &cfg);
        let mut g = TatpGenerator::new(cfg, tables);
        for _ in 0..300 {
            let (_, prog) = g.next();
            check_program_well_formed(&prog, engine.table_count() as u32);
            // And every program must actually execute without panicking.
            engine.submit(&prog, SimTime::ZERO);
        }
    }

    #[test]
    fn tpcc_programs_are_always_well_formed(seed in any::<u64>()) {
        let cfg = TpccConfig {
            seed,
            ..TpccConfig::small()
        };
        let mut engine = bionic_core::engine::Engine::new(
            bionic_core::config::EngineConfig::software().with_agents(4),
        );
        let (_, mut g) = tpcc::load(&mut engine, &cfg);
        for _ in 0..200 {
            let (_, prog) = g.next();
            check_program_well_formed(&prog, engine.table_count() as u32);
            engine.submit(&prog, SimTime::ZERO);
        }
    }

    #[test]
    fn fluid_queue_delay_is_monotone_in_load(
        service_ns in 10.0f64..500.0,
        load_a in 0.05f64..0.45,
        load_b in 0.5f64..0.9,
    ) {
        // Mean delay at a higher utilization must exceed the lower one.
        let measure = |load: f64| {
            let mut q = FluidQueue::latch();
            let service = SimTime::from_ns(service_ns);
            let inter = SimTime::from_ns(service_ns / load);
            let mut at = SimTime::ZERO;
            let mut total = SimTime::ZERO;
            for _ in 0..5_000 {
                total += q.delay(at, service);
                at += inter;
            }
            total.as_ns()
        };
        prop_assert!(measure(load_b) > measure(load_a));
    }

    #[test]
    fn fluid_queue_never_goes_back_in_time(
        arrivals in prop::collection::vec(0u64..1_000_000, 1..200),
        service_ns in 1.0f64..1000.0,
    ) {
        let mut q = FluidQueue::new(2, SimTime::from_ms(1.0));
        for a in arrivals {
            let d = q.delay(SimTime::from_ns(a as f64), SimTime::from_ns(service_ns));
            // Delay is finite and non-negative even for adversarial
            // out-of-order arrival patterns.
            prop_assert!(d.as_secs() < 1.0);
        }
    }
}
