//! Property-based tests spanning crates: slotted pages against a model
//! map, the overlay's versioned visibility against a model version store,
//! WAL codec fuzz, and NFA search against a reference substring oracle.

use bionic_dbms::overlay::overlay::OverlayIndex;
use bionic_dbms::scan::nfa::Nfa;
use bionic_dbms::storage::page::Page;
use bionic_dbms::storage::slotted::{SlotError, SlottedPage};
use bionic_dbms::wal::record::{ClrAction, LogBody, LogRecord, NULL_LSN};
use proptest::prelude::*;
use std::collections::HashMap;

// ---- slotted pages vs a model map --------------------------------------

#[derive(Debug, Clone)]
enum PageOp {
    Insert(Vec<u8>),
    Delete(usize),
    Update(usize, Vec<u8>),
    Install(u16, Vec<u8>),
}

fn page_op() -> impl Strategy<Value = PageOp> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..300).prop_map(PageOp::Insert),
        (0usize..80).prop_map(PageOp::Delete),
        ((0usize..80), prop::collection::vec(any::<u8>(), 0..300))
            .prop_map(|(s, r)| PageOp::Update(s, r)),
        ((0u16..100), prop::collection::vec(any::<u8>(), 0..200))
            .prop_map(|(s, r)| PageOp::Install(s, r)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn slotted_page_matches_model(ops in prop::collection::vec(page_op(), 1..120)) {
        let mut page = Page::zeroed();
        let mut sp = SlottedPage::init(&mut page);
        let mut model: HashMap<u16, Vec<u8>> = HashMap::new();
        let mut live_slots: Vec<u16> = Vec::new();
        for op in ops {
            match op {
                PageOp::Insert(rec) => {
                    if let Ok(slot) = sp.insert(&rec) {
                        model.insert(slot, rec);
                        if !live_slots.contains(&slot) {
                            live_slots.push(slot);
                        }
                    }
                }
                PageOp::Delete(i) => {
                    if let Some(&slot) = live_slots.get(i) {
                        if model.remove(&slot).is_some() {
                            prop_assert!(sp.delete(slot).is_ok());
                        } else {
                            prop_assert_eq!(sp.delete(slot), Err(SlotError::NoSuchSlot));
                        }
                    }
                }
                PageOp::Update(i, rec) => {
                    if let Some(&slot) = live_slots.get(i) {
                        if model.contains_key(&slot) && sp.update(slot, &rec).is_ok() {
                            model.insert(slot, rec);
                        }
                    }
                }
                PageOp::Install(slot, rec) => {
                    if sp.install(slot, &rec).is_ok() {
                        model.insert(slot, rec);
                        if !live_slots.contains(&slot) {
                            live_slots.push(slot);
                        }
                    }
                }
            }
            // Model equivalence on every live slot.
            for (&slot, rec) in &model {
                prop_assert_eq!(sp.get(slot).expect("live slot"), &rec[..]);
            }
        }
        // Everything not in the model must be dead.
        for s in 0..sp.slot_count() {
            if !model.contains_key(&s) {
                prop_assert_eq!(sp.get(s), Err(SlotError::NoSuchSlot));
            }
        }
    }

    // ---- overlay versioned reads vs a model version store --------------

    #[test]
    fn overlay_asof_matches_model(
        writes in prop::collection::vec((0i64..50, any::<bool>(), any::<u64>()), 1..150),
        merge_at in 0usize..150,
    ) {
        let base: Vec<(i64, u64)> = (0..50).map(|i| (i, 1000 + i as u64)).collect();
        let mut ov = OverlayIndex::new(base.clone(), usize::MAX);
        // model: key -> Vec<(version, Option<value>)>, plus the base.
        let mut model: HashMap<i64, Vec<(u64, Option<u64>)>> = HashMap::new();
        let mut version = 0u64;
        for (i, (key, is_delete, value)) in writes.iter().enumerate() {
            version += 1;
            if *is_delete {
                ov.delete(*key, version);
                model.entry(*key).or_default().push((version, None));
            } else {
                ov.put(*key, *value, version);
                model.entry(*key).or_default().push((version, Some(*value)));
            }
            if i == merge_at {
                ov.merge(version);
            }
        }
        // Latest visibility must match the model for every key.
        for k in 0..50i64 {
            let expect = match model.get(&k).and_then(|chain| chain.last()) {
                Some(&(_, v)) => v,
                None => Some(1000 + k as u64),
            };
            prop_assert_eq!(ov.get_latest(&k).0, expect, "key {}", k);
        }
        // As-of visibility at versions after the merge point matches too.
        let asof = version;
        for k in 0..50i64 {
            let expect = match model
                .get(&k)
                .and_then(|chain| chain.iter().rev().find(|&&(v, _)| v <= asof))
            {
                Some(&(_, v)) => v,
                None => Some(1000 + k as u64),
            };
            prop_assert_eq!(ov.get_asof(&k, asof).0, expect);
        }
    }

    // ---- WAL codec fuzz --------------------------------------------------

    #[test]
    fn log_records_roundtrip_arbitrary_payloads(
        txn in any::<u64>(),
        prev in any::<u64>(),
        table in any::<u32>(),
        rid in any::<u64>(),
        before in prop::collection::vec(any::<u8>(), 0..500),
        after in prop::collection::vec(any::<u8>(), 0..500),
        kind in 0u8..5,
    ) {
        let body = match kind {
            0 => LogBody::Insert { table, rid, after: after.clone() },
            1 => LogBody::Update { table, rid, before: before.clone(), after },
            2 => LogBody::Delete { table, rid, before },
            3 => LogBody::Clr {
                undo_next: prev,
                action: ClrAction::Install { table, rid, image: after },
            },
            _ => LogBody::Checkpoint { active: vec![(txn, prev)], redo_from: rid },
        };
        let rec = LogRecord { lsn: 0, txn, prev_lsn: NULL_LSN, body };
        let encoded = rec.encode();
        let (decoded, next) = LogRecord::decode(&encoded, 0).expect("decodes");
        prop_assert_eq!(decoded, rec);
        prop_assert_eq!(next as usize, encoded.len());
        // Any strict prefix is detected as truncated.
        prop_assert!(LogRecord::decode(&encoded[..encoded.len() - 1], 0).is_none());
    }

    // ---- NFA vs substring oracle ----------------------------------------

    #[test]
    fn nfa_literal_equals_substring_search(
        needle in "[a-d]{1,6}",
        hay in "[a-e]{0,60}",
    ) {
        let nfa = Nfa::compile(&needle).expect("literal compiles");
        prop_assert_eq!(nfa.is_match(hay.as_bytes()), hay.contains(&needle));
    }

    #[test]
    fn nfa_alternation_equals_either_substring(
        a in "[a-c]{1,4}",
        b in "[a-c]{1,4}",
        hay in "[a-d]{0,40}",
    ) {
        let nfa = Nfa::compile(&format!("{a}|{b}")).expect("compiles");
        prop_assert_eq!(
            nfa.is_match(hay.as_bytes()),
            hay.contains(&a) || hay.contains(&b)
        );
    }

    #[test]
    fn nfa_star_on_single_char_matches_iff_prefix_run(
        hay in "[ab]{0,30}",
    ) {
        // "ab*c" oracle: some 'a' followed by zero+ 'b's then 'c' — over an
        // {a,b} alphabet it can never match (no 'c'), while "ab*" always
        // matches iff an 'a' exists.
        let no_c = Nfa::compile("ab*c").unwrap();
        prop_assert!(!no_c.is_match(hay.as_bytes()));
        let ab = Nfa::compile("ab*").unwrap();
        prop_assert_eq!(ab.is_match(hay.as_bytes()), hay.contains('a'));
    }
}
