//! Result-cache staleness under the hybrid driver (§5.6's "cooked data"
//! pool meeting Figure 4's concurrent update stream).
//!
//! The hybrid run keeps a scan stream, a TATP update stream, and a
//! range-query stream alive on one engine. Every committed write bumps the
//! written table's version; a cached range count whose dependency version
//! moved must be recomputed, never served. This is the regression test for
//! that contract: each cached answer is cross-checked against a fresh
//! uncached recount of the same range, while Insert/DeleteCallForwarding
//! transactions change the very row counts being cached.

use bionic_core::config::EngineConfig;
use bionic_core::engine::Engine;
use bionic_sim::time::SimTime;
use bionic_workloads::hybrid::{run_hybrid, HybridConfig};
use bionic_workloads::tatp::TatpGenerator;

#[test]
fn hybrid_range_queries_never_serve_stale_counts() {
    // Phase 1: a full hybrid run at 50% scan pressure populates the result
    // cache through its range-query stream while updates invalidate it.
    let mut engine = Engine::new(EngineConfig::bionic());
    let cfg = HybridConfig {
        scan_rows: 100_000,
        txns: 600,
        ..HybridConfig::small(0.5)
    };
    let report = run_hybrid(&mut engine, &cfg);
    assert!(report.queries > 0, "hybrid run must issue range queries");

    // Phase 2: keep the update stream going on the same engine and
    // interrogate CALL_FORWARDING — the one TATP table whose *row count*
    // moves (InsertCallForwarding / DeleteCallForwarding), so a stale
    // cached count would be numerically wrong, not just old.
    let tables = report.tatp_tables;
    let cf = tables.call_forwarding;
    // CALL_FORWARDING keys are (s_id, sf_type 1..=4, start_time 0|8|16)
    // packed as ((s_id*4 + sf_type-1)*3 + start_time/8).
    let key_span = cfg.tatp.subscribers * 12;
    // Reseed: replaying phase 1's exact stream would make every
    // InsertCallForwarding a duplicate (and every delete a no-op), so
    // nothing would commit and nothing would be invalidated.
    let phase2 = bionic_workloads::tatp::TatpConfig {
        seed: cfg.tatp.seed ^ 0xDEAD_BEEF,
        ..cfg.tatp.clone()
    };
    let mut generator = TatpGenerator::new(phase2, tables);
    let mut now = engine.stats.last_completion;
    for round in 0..400i64 {
        let (_, prog) = generator.next();
        now += SimTime::from_us(2.0);
        engine.submit(&prog, now);

        // A fixed range (stable fingerprint, so version bumps surface as
        // stale lookups) plus a rotating range (coverage of the key space).
        let fixed = (0i64, key_span / 8);
        let lo = (round * 131) % key_span;
        let rotating = (lo, (lo + key_span / 16).min(key_span));
        for (lo, hi) in [fixed, rotating] {
            let (cached, _, done) = engine.query_range(cf, lo, hi, None, now);
            // Immediate re-ask with no intervening commit must hit.
            let (again, hit, _) = engine.query_range(cf, lo, hi, None, done);
            assert!(hit, "back-to-back identical query must be a cache hit");
            assert_eq!(again, cached);
            // Ground truth: an as-of-latest read bypasses the cache and
            // recounts through the overlay.
            let (fresh, from_cache, _) = engine.query_range(cf, lo, hi, Some(u64::MAX), done);
            assert!(!from_cache, "asof reads must bypass the result cache");
            assert_eq!(
                cached, fresh,
                "cache served a stale count for CALL_FORWARDING [{lo},{hi})"
            );
        }
    }

    let stats = engine.result_cache_stats();
    assert!(stats.hits > 0, "the cache must have served hits");
    assert!(
        stats.stale > 0,
        "the update stream must have invalidated cached counts (stale=0 \
         means bump_table never fired for a cached dependency)"
    );
}
