//! Offline stand-in for the `rand` crate, exposing exactly the API subset
//! this workspace uses: `SmallRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The container this repo builds in has no crates.io access, so external
//! dependencies are vendored as minimal local implementations. The core
//! generator is SplitMix64 — statistically fine for workload-shaping and,
//! critically, fully deterministic, which every experiment relies on.
//! Numbers differ from upstream `rand`, which only shifts which keys a
//! workload touches; all determinism and distribution properties hold.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value uniformly sampleable from a half-open or inclusive range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi)` (`inclusive` widens to `[lo, hi]`).
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128) - (lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "empty sample range");
                let v = (rng.next_u64() as u128 % span as u128) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self, _inclusive: bool) -> Self {
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self, _inclusive: bool) -> Self {
        lo + (unit_f64(rng.next_u64()) as f32) * (hi - lo)
    }
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// A type producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform value of `T`'s full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }

    /// Fill `dest` with uniform bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(1..=4);
            assert!((1..=4).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.85)).count();
        assert!((82_000..88_000).contains(&hits), "hits = {hits}");
    }
}
