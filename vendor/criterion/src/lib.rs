//! Offline stand-in for `criterion`, covering the API subset this
//! workspace's benches use: `Criterion`, benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `black_box`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of statistical sampling it smoke-runs each benchmark a small
//! fixed number of iterations and reports mean wall-clock time. That keeps
//! `cargo bench` (and any asserts inside bench bodies) working with no
//! network access, while staying fast enough to run in CI.

#![warn(missing_docs)]

use std::fmt;
use std::time::Instant;

/// Re-export matching upstream's `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Number of timed iterations per benchmark (upstream samples adaptively).
const ITERS: u32 = 10;

/// Top-level benchmark context.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _c: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, f);
        self
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes sample count; the smoke runner ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a benchmark within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into()), f);
        self
    }

    /// Run a parameterized benchmark within this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into()), |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A function name / parameter pair.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function.into(), parameter),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// Timing loop handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    nanos: u128,
    iters: u32,
}

impl Bencher {
    /// Time `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.nanos = start.elapsed().as_nanos();
        self.iters = ITERS;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher { nanos: 0, iters: 1 };
    f(&mut b);
    let mean = b.nanos / u128::from(b.iters.max(1));
    println!(
        "bench {name}: {mean} ns/iter (smoke run, {} iters)",
        b.iters
    );
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(c: &mut Criterion) {
        let mut g = c.benchmark_group("sum");
        g.sample_size(30);
        for n in [4u64, 8] {
            g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).map(black_box).sum::<u64>())
            });
        }
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        sample(&mut c);
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }
}
