//! Offline stand-in for the `bytes` crate: `Bytes`, `BytesMut`, and the
//! `Buf`/`BufMut` accessor methods this workspace's WAL codecs use. Backed
//! by plain `Vec<u8>` — the zero-copy machinery of the real crate is not
//! needed for an in-memory log codec.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

/// Read-side cursor over an immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Copy a slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

/// Growable write-side buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Read accessors over a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread tail.
    fn chunk(&self) -> &[u8];
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Read a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "advance past end");
        self.pos += n;
    }
}

/// Write accessors over a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(42);
        b.put_slice(b"xyz");
        assert_eq!(b.len(), 1 + 4 + 8 + 3);
        let mut r = Bytes::copy_from_slice(&b);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(&r[..2], b"xy");
        r.advance(3);
        assert_eq!(r.remaining(), 0);
    }
}
