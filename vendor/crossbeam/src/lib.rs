//! Offline stand-in for the `crossbeam` crate, covering the two pieces this
//! workspace uses: `queue::SegQueue` (an MPMC FIFO) and `channel`
//! (MPMC senders *and* receivers, unlike `std::sync::mpsc`). Lock-based
//! rather than lock-free — semantics and API match; the parallel harness
//! only needs correctness and modest contention behavior.

#![warn(missing_docs)]

/// Concurrent queues.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded MPMC FIFO queue.
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// An empty queue.
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Append an element.
        pub fn push(&self, item: T) {
            self.inner.lock().unwrap().push_back(item);
        }

        /// Remove the oldest element, if any.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().unwrap().pop_front()
        }

        /// Current depth.
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap().len()
        }

        /// Is the queue empty?
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

/// MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<ChannelState<T>>,
        ready: Condvar,
    }

    struct ChannelState<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Sending half; clone freely.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; clone freely (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// The channel is disconnected (all senders dropped, queue drained).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The channel is disconnected (all receivers dropped).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(ChannelState {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Create a bounded channel. The bound is advisory in this stand-in
    /// (sends never block); harness workloads bound depth by construction.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut q = self.shared.queue.lock().unwrap();
            q.senders -= 1;
            if q.senders == 0 {
                drop(q);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a value, waking one waiting receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.shared.queue.lock().unwrap().items.push_back(value);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = q.items.pop_front() {
                    return Ok(v);
                }
                if q.senders == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.shared
                .queue
                .lock()
                .unwrap()
                .items
                .pop_front()
                .ok_or(RecvError)
        }

        /// Blocking iterator until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Iterator over received values.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use super::queue::SegQueue;
    use std::thread;

    #[test]
    fn segqueue_fifo() {
        let q = SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn channel_fans_out_to_multiple_receivers() {
        let (tx, rx) = channel::unbounded::<u32>();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(thread::spawn(move || rx.iter().count()));
        }
        drop(rx);
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }
}
