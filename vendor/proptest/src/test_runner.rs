//! Deterministic case runner: config, RNG, and failure type.

use std::fmt;
use std::ops::Range;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property. Constructed by `prop_assert!`-family macros or
/// `TestCaseError::fail`, and surfaced as a panic by the runner.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wrap a failure reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Alias matching upstream's per-case result type.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name: every run of a given test generates the same
    /// case sequence (upstream records a seed file; offline we fix it).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `range`.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        let span = range.end - range.start;
        if span == 0 {
            return range.start;
        }
        range.start + (self.next_u64() as usize % span)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
