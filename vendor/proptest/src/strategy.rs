//! Strategies: deterministic value generators plus the combinators and
//! macros the workspace's property tests use.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of values of one type.
///
/// Unlike upstream there is no value tree / shrinking: `generate` draws a
/// value directly from the deterministic [`TestRng`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filter generated values (regenerates until `f` accepts, bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Type-erase into a [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {} rejected 1000 consecutive values",
            self.whence
        );
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `options`.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_in(0..self.options.len());
        self.options[i].generate(rng)
    }
}

// ---- numeric ranges ----------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                (self.start as i128 + (rng.next_u64() as u128 % span as u128) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                assert!(span > 0, "empty range strategy");
                (*self.start() as i128 + (rng.next_u64() as u128 % span as u128) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ---- any::<T>() --------------------------------------------------------

/// Types with a full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw a uniform value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---- tuples ------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

// ---- regex string strategies -------------------------------------------

/// `&str` patterns act as string strategies, as upstream. Supported
/// grammar (all this workspace uses): a sequence of literal characters
/// and character classes `[a-z0_]`, each optionally followed by `{m,n}`;
/// e.g. `"[a-d]{1,6}"`, `"x[ab]{0,30}"`.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (choices, lo, hi) in &atoms {
            let n = rng.usize_in(*lo..hi + 1);
            for _ in 0..n {
                out.push(choices[rng.usize_in(0..choices.len())]);
            }
        }
        out
    }
}

type Atom = (Vec<char>, usize, usize);

fn parse_pattern(pat: &str) -> Vec<Atom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms: Vec<Atom> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pat:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (a, b) = (chars[j] as u32, chars[j + 2] as u32);
                        assert!(a <= b, "inverted class range in {pat:?}");
                        set.extend((a..=b).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pat:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad {m,n}"),
                    n.trim().parse().expect("bad {m,n}"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad {n}");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(lo <= hi, "inverted repetition in {pat:?}");
        atoms.push((choices, lo, hi));
    }
    atoms
}

// ---- macros ------------------------------------------------------------

/// Define property tests. Supports the upstream surface this workspace
/// uses: an optional `#![proptest_config(...)]` header and `#[test]`
/// functions whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            #[test]
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            cfg.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Assert inside a property test; failure reports the case instead of
/// panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)*), l, r),
            ));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Uniform choice among strategies yielding one common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn pattern_strategy_matches_grammar() {
        let mut rng = TestRng::from_name("pattern");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-d]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='d').contains(&c)), "{s:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                (0i64..10, any::<bool>()).prop_map(|(k, b)| if b { k } else { -k }),
                Just(99i64),
            ],
            n in 0usize..5,
        ) {
            prop_assert!((-10..10).contains(&v) || v == 99);
            prop_assert!(n < 5);
        }

        #[test]
        fn collections_generate_in_bounds(
            xs in prop::collection::vec(any::<u8>(), 2..7),
            m in prop::collection::btree_map(0i64..100, any::<u64>(), 0..10),
        ) {
            prop_assert!((2..7).contains(&xs.len()));
            prop_assert!(m.len() < 10);
        }
    }
}
