//! Offline stand-in for `proptest`, covering the API subset this workspace
//! uses: the `proptest!`/`prop_assert!`/`prop_assert_eq!`/`prop_oneof!`
//! macros, range and tuple strategies, `any::<T>()`, simple regex string
//! strategies of the form `"[a-z]{m,n}"`, and `prop::collection::{vec,
//! btree_map}`.
//!
//! Differences from upstream, deliberate for an offline test harness:
//! cases are generated from a seed derived from the test name (fully
//! deterministic across runs and machines), and there is no shrinking — a
//! failing case panics with the generated inputs' debug output where
//! available.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>` with up to `len` entries
    /// (duplicate keys collapse, as upstream).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        len: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, len }
    }

    /// See [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        len: Range<usize>,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.len.clone());
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// Everything a test file needs via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced strategy modules (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}
