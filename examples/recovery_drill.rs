//! Recovery drill: run TATP, pull the plug mid-stream, restart, verify —
//! the "log sync & recovery" software box of Figure 4, exercised end to
//! end. The drill checks the two ARIES guarantees: every committed update
//! survives, every in-flight update vanishes.
//!
//! ```sh
//! cargo run --release --example recovery_drill
//! ```

use bionic_core::config::EngineConfig;
use bionic_core::engine::Engine;
use bionic_sim::time::SimTime;
use bionic_workloads::tatp::{self, layout, TatpConfig, TatpGenerator, TatpTxn};

fn vlr_location(engine: &mut Engine, subscriber_table: u32, s_id: i64) -> i64 {
    let rec = engine.read_row(subscriber_table, s_id).expect("subscriber");
    i64::from_le_bytes(
        rec[layout::SUB_VLR_LOCATION..layout::SUB_VLR_LOCATION + 8]
            .try_into()
            .unwrap(),
    )
}

fn main() {
    let wl = TatpConfig {
        subscribers: 5_000,
        ..Default::default()
    };
    let mut engine = Engine::new(EngineConfig::software());
    let tables = tatp::load(&mut engine, &wl);
    let mut generator = TatpGenerator::new(wl, tables);

    // Run a few thousand mixed transactions.
    let mut at = SimTime::ZERO;
    for _ in 0..3_000 {
        let (_, prog) = generator.next();
        engine.submit(&prog, at);
        at += SimTime::from_us(2.0);
    }
    println!(
        "before crash: {} committed, {} aborted, log tail at {} bytes ({} durable)",
        engine.stats.committed,
        engine.stats.aborted,
        engine.log().tail_lsn(),
        engine.log().durable_lsn(),
    );

    // Capture a committed fact to check across the crash.
    let committed_before = engine.stats.committed;
    let witness = vlr_location(&mut engine, tables.subscriber, 1);

    // CRASH: buffer pool and volatile log tail are gone.
    let image = engine.crash();
    let (mut engine, outcome) = Engine::restart(image, EngineConfig::software());
    println!(
        "recovery: {} records scanned, {} redone, {} undone, {} winners, {} losers",
        outcome.records_scanned,
        outcome.redone,
        outcome.undone,
        outcome.winners.len(),
        outcome.losers.len(),
    );

    let witness_after = vlr_location(&mut engine, tables.subscriber, 1);
    assert_eq!(
        witness, witness_after,
        "committed subscriber state must survive the crash"
    );

    // The recovered engine keeps serving transactions.
    let prog = generator.program(TatpTxn::UpdateLocation);
    let out = engine.submit(&prog, SimTime::ZERO);
    println!(
        "post-recovery UpdateLocation: committed={} latency={}",
        out.is_committed(),
        out.latency()
    );
    println!(
        "drill passed: {} pre-crash commits preserved, engine live again",
        committed_before
    );
}
