//! §5.4's closing aside, demonstrated: "efficient logging infrastructure
//! could prove useful outside the database engine; high performance logging
//! file systems are another obvious candidate."
//!
//! A log-structured filesystem appends through the same three insertion
//! paths the DBMS log uses; we compare the CPU cost of an append-heavy
//! workload, then crash it and replay.
//!
//! ```sh
//! cargo run --release --example logfs_demo
//! ```

use bionic_sim::fpga::FpgaFabric;
use bionic_sim::time::SimTime;
use bionic_wal::logfs::LogFs;
use bionic_wal::timing::{ConsolidatedLog, HwLog, LatchedLog, LogInsertModel, SwLogParams};

fn main() {
    // An append-heavy workload: 16 writers, 50k log-line appends.
    let writers = 16usize;
    let appends = 50_000u64;
    let line = b"2013-01-07T09:00:00Z svc=frontend evt=request latency_us=42";

    let mut fabric = FpgaFabric::hc2();
    let mut paths: Vec<(&str, Box<dyn LogInsertModel>)> = vec![
        ("latched", Box::new(LatchedLog::new(SwLogParams::default()))),
        (
            "consolidated",
            Box::new(ConsolidatedLog::new(SwLogParams::default())),
        ),
        ("hardware", Box::new(HwLog::hc2(&mut fabric).unwrap())),
    ];

    println!("append-heavy logging FS, {writers} writers, {appends} appends:");
    for (name, model) in paths.iter_mut() {
        let mut fs = LogFs::new();
        let (fid, _) = fs.create("app.log").unwrap();
        let mut clocks = vec![SimTime::ZERO; writers];
        let mut cpu_total = SimTime::ZERO;
        let mut last = SimTime::ZERO;
        for i in 0..appends {
            let w = (i % writers as u64) as usize;
            let bytes = fs.append(fid, line).unwrap() as u64;
            let out = model.insert(clocks[w], w, bytes);
            clocks[w] = clocks[w] + SimTime::from_ns(500.0) + out.cpu_busy;
            cpu_total += out.cpu_busy;
            last = last.max(out.buffered_at);
        }
        println!(
            "  {name:<12} {:>10.0} appends/s   {:>7.1} ns CPU/append",
            appends as f64 / last.as_secs(),
            cpu_total.as_ns() / appends as f64,
        );
    }

    // Durability drill: flush, append more, crash, replay.
    let mut fs = LogFs::new();
    let (fid, _) = fs.create("journal").unwrap();
    for i in 0..1000 {
        fs.append(fid, format!("entry {i}\n").as_bytes()).unwrap();
    }
    fs.flush();
    fs.append(fid, b"THIS LINE DIES WITH THE CRASH").unwrap();
    let replayed = LogFs::replay(fs.crash_image());
    let contents = replayed.read(replayed.lookup("journal").unwrap()).unwrap();
    println!(
        "\ncrash drill: {} bytes survived ({} entries), volatile tail gone: {}",
        contents.len(),
        contents.iter().filter(|&&b| b == b'\n').count(),
        !contents.ends_with(b"CRASH"),
    );
}
