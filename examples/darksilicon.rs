//! Regenerate Figure 1: fraction of chip utilized vs. available parallelism
//! for the 2011 (64-core) and 2018 (1024-core, 20% dark) chips, at the
//! paper's four serial fractions — plus the post-2018 outlook (§2).
//!
//! ```sh
//! cargo run --release --example darksilicon
//! ```

use bionic_sim::darksilicon::{
    figure1_curves, serial_budget_for_utilization, ChipGeneration, FIGURE1_SERIAL_FRACTIONS,
};

fn main() {
    for (label, cores) in [
        ("(a) 2011, 64 cores", 64u64),
        ("(b) 2018, 1024 cores", 1024),
    ] {
        println!("=== Figure 1{label} ===");
        print!("{:>8}", "cores");
        for s in FIGURE1_SERIAL_FRACTIONS {
            print!("{:>12}", format!("{}% serial", s * 100.0));
        }
        println!();
        let curves = figure1_curves(cores);
        let points = curves[0].points.len();
        for i in 0..points {
            let n = curves[0].points[i].0;
            print!("{n:>8}");
            for c in &curves {
                print!("{:>12.3}", c.points[i].1);
            }
            println!();
        }
        if cores == 1024 {
            let g = ChipGeneration::y2018();
            println!(
                "power budget: only {} of {} cores can be lit (20% dark)",
                g.powered_cores(),
                g.cores
            );
        }
        println!();
    }

    println!("=== serial-fraction budget to keep 90% of the powered chip busy ===");
    for cores in [64u64, 256, 1024, 4096] {
        let s = serial_budget_for_utilization(0.9, cores).unwrap();
        println!(
            "{cores:>6} cores: serial work must be below {:.5}%",
            s * 100.0
        );
    }

    println!("\n=== the post-2018 outlook (usable fraction -40%/generation) ===");
    for step in 0..4 {
        let g = ChipGeneration::after_2018(step, 0.4);
        println!(
            "{}: {:>6} cores, {:>4} powered ({:.0}% dark), die utilization at 0.1% serial: {:.3}",
            g.year,
            g.cores,
            g.powered_cores(),
            g.dark_fraction * 100.0,
            g.die_utilization(0.001)
        );
    }
}
