//! TATP on the software engine vs. the bionic engine — the paper's
//! headline comparison (§1): "effective hardware support need not always
//! increase raw performance; the true goal is to reduce net energy use."
//!
//! ```sh
//! cargo run --release --example tatp_bionic
//! ```

use bionic_core::config::EngineConfig;
use bionic_core::engine::Engine;
use bionic_sim::time::SimTime;
use bionic_workloads::tatp::{self, TatpConfig, TatpGenerator};

fn run(label: &str, cfg: EngineConfig) -> (f64, f64, f64) {
    let wl = TatpConfig {
        subscribers: 20_000,
        ..Default::default()
    };
    let mut engine = Engine::new(cfg);
    let tables = tatp::load(&mut engine, &wl);
    let mut generator = TatpGenerator::new(wl, tables);
    let report = bionic_workloads::run(&mut engine, 20_000, SimTime::from_us(1.0), || {
        let (t, p) = generator.next();
        (t.label(), p)
    });
    println!("=== {label} ===");
    println!("{}", report.summary_table());
    (
        report.throughput_per_sec,
        report.joules_per_txn,
        report.latency.p50.as_us(),
    )
}

fn main() {
    let (sw_tput, sw_j, sw_lat) = run(
        "software DORA (conventional multicore)",
        EngineConfig::software(),
    );
    let (hw_tput, hw_j, hw_lat) = run(
        "bionic (probe + log + queue + overlay on FPGA)",
        EngineConfig::bionic(),
    );

    println!("=== verdict ===");
    println!(
        "throughput: {:.0} -> {:.0} txn/s ({:+.0}%)",
        sw_tput,
        hw_tput,
        100.0 * (hw_tput / sw_tput - 1.0)
    );
    println!(
        "joules/txn: {:.3e} -> {:.3e} ({:.1}x less energy)",
        sw_j,
        hw_j,
        sw_j / hw_j
    );
    println!(
        "median latency: {:.1}us -> {:.1}us (asynchrony is not free)",
        sw_lat, hw_lat
    );
}
