//! §4's control-flow-in-hardware argument, run end to end: LIKE-style
//! regex filtering over a columnar string column, software NFA simulation
//! vs skeleton-automata lanes on the FPGA scanner.
//!
//! ```sh
//! cargo run --release --example regex_scan
//! ```

use bionic_scan::nfa::Nfa;
use bionic_scan::predicate::{ScanRequest, StrPredicate};
use bionic_scan::scanner::{scan_enhanced, scan_software, ScannerConfig};
use bionic_sim::platform::Platform;
use bionic_sim::time::SimTime;
use bionic_storage::columnar::{Column, ColumnarTable};

fn main() {
    // A log table: 1M rows of 32-byte message tags.
    let rows = 1_000_000usize;
    let mut data = Vec::with_capacity(rows * 32);
    for i in 0..rows {
        let mut tag = match i % 5003 {
            0 => format!("req{i:09} status=TIMEOUT retry"),
            1 => format!("req{i:09} status=PANIC stack"),
            _ => format!("req{i:09} status=ok fast"),
        }
        .into_bytes();
        tag.resize(32, b' ');
        data.extend_from_slice(&tag);
    }
    let mut table = ColumnarTable::new();
    table.add_column("key", Column::I64((0..rows as i64).collect()));
    table.add_column("msg", Column::FixedStr { width: 32, data });

    // First, the raw §4 asymmetry on a hostile pattern.
    let gnarly = Nfa::compile("(TIME|TIM)+OUT|PANIC").unwrap();
    let probe: Vec<u8> = b"status=TIMTIMEOUT maybe".to_vec();
    let (hit, stats) = gnarly.search_with_stats(&probe);
    println!(
        "pattern '{}': {} states; on a {}B probe: {} state visits ({:.1}/byte), match={hit}",
        gnarly.pattern(),
        gnarly.state_count(),
        stats.bytes,
        stats.state_visits,
        stats.state_visits as f64 / stats.bytes.max(1) as f64,
    );

    // Then the full scan, both paths.
    let req = ScanRequest {
        str_predicates: vec![StrPredicate::new(1, "TIMEOUT|PANIC").unwrap()],
        projection: vec![0],
        ..Default::default()
    };
    let mut p_sw = Platform::hc2();
    let sw = scan_software(&mut p_sw, &table, &req, SimTime::ZERO);
    let mut p_hw = Platform::hc2();
    let hw = scan_enhanced(
        &mut p_hw,
        &table,
        &req,
        SimTime::ZERO,
        &ScannerConfig::default(),
    );
    assert_eq!(sw.matches, hw.matches);

    let gb = (rows * 32) as f64 / 1e9;
    println!(
        "\nscan of {rows} rows ({:.2} GB of tags), {} matches:",
        gb,
        sw.matches.len()
    );
    println!(
        "  software NFA : {:>8.2} ms  {:>6.2} GB/s  {:>8.4} J",
        sw.done.as_ms(),
        gb / sw.done.as_secs(),
        p_sw.energy.total().as_j()
    );
    println!(
        "  FPGA lanes   : {:>8.2} ms  {:>6.2} GB/s  {:>8.4} J",
        hw.done.as_ms(),
        gb / hw.done.as_secs(),
        p_hw.energy.total().as_j()
    );
    println!(
        "\n§4: the software cost rides the active-state set; the skeleton \
         automata [13] evaluate every state each cycle — flat per byte."
    );
}
