//! Regenerate Figure 3: the time breakdown of TATP-UpdateSubscriberData and
//! TPC-C-StockLevel on a highly-optimized (DORA) engine running on a
//! conventional multicore — the motivation for every §5 offload.
//!
//! ```sh
//! cargo run --release --example tpcc_breakdown
//! ```

use bionic_core::breakdown::{Category, TimeBreakdown};
use bionic_core::config::EngineConfig;
use bionic_core::engine::Engine;
use bionic_sim::time::SimTime;
use bionic_workloads::tatp::{self, TatpConfig, TatpGenerator, TatpTxn};
use bionic_workloads::tpcc::{self, TpccConfig, TpccTxn};

fn bar(pct: f64) -> String {
    "#".repeat((pct / 2.0).round() as usize)
}

fn print_breakdown(label: &str, b: &TimeBreakdown) {
    println!("--- {label} ---");
    for (c, pct) in b.percentages() {
        if c == Category::Lock {
            continue; // DORA: always zero, as in the figure
        }
        println!("{:<11} {:>6.2}% {}", c.label(), pct, bar(pct));
    }
    println!();
}

fn main() {
    // Left bar: TATP UpdateSubscriberData.
    let wl = TatpConfig {
        subscribers: 20_000,
        ..Default::default()
    };
    let mut engine = Engine::new(EngineConfig::software());
    let tables = tatp::load(&mut engine, &wl);
    let mut generator = TatpGenerator::new(wl, tables);
    let report = bionic_workloads::run(&mut engine, 5_000, SimTime::from_us(2.0), || {
        (
            "UpdSubData",
            generator.program(TatpTxn::UpdateSubscriberData),
        )
    });
    print_breakdown(
        &format!(
            "TATP UpdateSubscriberData ({} committed, {} aborted by design)",
            report.committed, report.aborted
        ),
        &report.breakdown,
    );

    // Right bar: TPC-C StockLevel.
    let wl = TpccConfig::default();
    let mut engine = Engine::new(EngineConfig::software());
    let (_, mut generator) = tpcc::load(&mut engine, &wl);
    let report = bionic_workloads::run(&mut engine, 2_000, SimTime::from_us(10.0), || {
        ("StockLevel", generator.program(TpccTxn::StockLevel))
    });
    print_breakdown(
        &format!("TPC-C StockLevel ({} committed)", report.committed),
        &report.breakdown,
    );

    let btree = report.breakdown.fraction(Category::Btree);
    println!(
        "§5.3 check — StockLevel spends {:.0}% of its time in index probes \
         (paper: \"40% or more\")",
        btree * 100.0
    );
}
