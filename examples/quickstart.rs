//! Quickstart: build a bionic engine, run a few transactions, inspect the
//! Figure-3 breakdown and the energy meter.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bionic_core::config::EngineConfig;
use bionic_core::engine::Engine;
use bionic_core::ops::{Action, Op, Patch, TxnProgram};
use bionic_sim::time::SimTime;

fn main() {
    // A fully "bionic" engine: tree probes, log insertion, queues, and the
    // overlay all offloaded to the modeled FPGA (Figure 4).
    let mut engine = Engine::new(EngineConfig::bionic());

    // One table of bank accounts: record = key(8B) | balance(8B) | padding.
    let accounts = engine.create_table("accounts");
    for k in 0..1_000i64 {
        let mut body = vec![0u8; 56];
        body[..8].copy_from_slice(&1_000i64.to_le_bytes());
        engine.load(accounts, k, &body);
    }
    engine.finish_load();

    // A transfer: two updates in one phase (DORA routes them to their
    // partitions), then a verifying read.
    let transfer = |from: i64, to: i64, amount: i64| TxnProgram {
        name: "transfer",
        phases: vec![
            vec![
                Action::new(
                    accounts,
                    from,
                    vec![Op::Update {
                        table: accounts,
                        key: from,
                        patch: Patch::AddI64 {
                            offset: 8,
                            delta: -amount,
                        },
                    }],
                ),
                Action::new(
                    accounts,
                    to,
                    vec![Op::Update {
                        table: accounts,
                        key: to,
                        patch: Patch::AddI64 {
                            offset: 8,
                            delta: amount,
                        },
                    }],
                ),
            ],
            vec![Action::new(
                accounts,
                from,
                vec![Op::Read {
                    table: accounts,
                    key: from,
                }],
            )],
        ],
        abort_on_missing_read: true,
    };

    let mut at = SimTime::ZERO;
    for i in 0..100 {
        let out = engine.submit(&transfer(i, (i + 37) % 1000, 25), at);
        assert!(out.is_committed());
        at += SimTime::from_us(5.0);
    }

    // Verify: account 0 sent 25 and maybe received.
    let rec = engine.read_row(accounts, 0).unwrap();
    let balance = i64::from_le_bytes(rec[8..16].try_into().unwrap());
    println!("account 0 balance after transfers: {balance}");

    println!("\n=== committed: {} ===", engine.stats.committed);
    println!(
        "throughput: {:.0} txn/s (simulated)",
        engine.stats.throughput_per_sec()
    );
    println!("p99 latency: {}", engine.stats.latency.quantile(0.99));
    println!(
        "energy: {} total, {:.1} nJ/txn",
        engine.platform.energy.total(),
        engine.platform.energy.total().as_nj() / engine.stats.committed as f64
    );
    println!("\nwhere the CPU time went (Figure 3 categories):");
    print!("{}", engine.breakdown.table());
}
